#ifndef SENSJOIN_JOIN_QUANTIZER_H_
#define SENSJOIN_JOIN_QUANTIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/query/interval.h"

namespace sensjoin::join {

/// Quantization of one join-attribute dimension: bounded range and
/// resolution (step size), Sec. V-B. These are environment properties fixed
/// at network setup and disseminated independently of queries.
struct DimensionSpec {
  std::string attr_name;
  int attr_index = -1;  ///< index into the network schema
  double min_val = 0.0;
  double max_val = 0.0;
  double resolution = 1.0;
};

/// Per-attribute quantization ranges for an environment.
struct AttrQuantization {
  double min_val = 0.0;
  double max_val = 0.0;
  double resolution = 1.0;
};

/// Maps attribute names to their quantization; the SENS-Join executor looks
/// up the query's join attributes here.
struct QuantizationConfig {
  std::map<std::string, AttrQuantization> by_attr;
};

/// Quantizes join-attribute tuples into a restricted, discrete,
/// n-dimensional space (Fig. 7). Each dimension gets
/// ceil((max-min)/resolution)+1 cells, rounded up to a power of two;
/// readings outside the range clamp to the boundary cells (which therefore
/// decode to half-open intervals toward +-infinity so the filter join never
/// produces false negatives).
class Quantizer {
 public:
  /// Builds a quantizer; dimensions keep the given order (which must be the
  /// canonical join-attribute order of the query). Fails on empty dims, a
  /// non-positive resolution, or max < min.
  static StatusOr<Quantizer> Create(std::vector<DimensionSpec> dims);

  /// Convenience: one dimension per entry of `attr_indices`, with ranges
  /// looked up in `config` by attribute name. Fails if an attribute has no
  /// configured quantization.
  static StatusOr<Quantizer> FromConfig(const data::Schema& schema,
                                        const std::vector<int>& attr_indices,
                                        const QuantizationConfig& config);

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const DimensionSpec& dim(int i) const { return dims_[i]; }

  /// Number of cells in dimension `i` (a power of two).
  uint32_t size_of_dim(int i) const { return size_of_dim_[i]; }
  /// log2(size_of_dim(i)).
  int bits_per_dim(int i) const { return bits_per_dim_[i]; }
  const std::vector<int>& bits_per_dims() const { return bits_per_dim_; }
  /// Sum over dimensions of bits_per_dim.
  int total_bits() const { return total_bits_; }

  /// Cell coordinate of `value` in dimension `i`, clamped into range
  /// (EncodeTuple, Fig. 7 lines 10-15).
  uint32_t Coordinate(int i, double value) const;

  /// The interval of raw values that quantize into cell `c` of dimension
  /// `i`. Boundary cells extend to -/+infinity because out-of-range values
  /// clamp onto them.
  query::Interval CellInterval(int i, uint32_t c) const;

  /// A representative raw value for cell `c` (its center, clamped bounds
  /// for boundary cells).
  double CellCenter(int i, uint32_t c) const;

 private:
  explicit Quantizer(std::vector<DimensionSpec> dims);

  std::vector<DimensionSpec> dims_;
  std::vector<uint32_t> size_of_dim_;
  std::vector<int> bits_per_dim_;
  int total_bits_ = 0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_QUANTIZER_H_
