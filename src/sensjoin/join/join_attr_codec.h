#ifndef SENSJOIN_JOIN_JOIN_ATTR_CODEC_H_
#define SENSJOIN_JOIN_JOIN_ATTR_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sensjoin/join/point_set.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/join/zorder.h"
#include "sensjoin/query/interval.h"

namespace sensjoin::join {

/// Bundles quantization, Z-ordering and the quadtree layout for one query's
/// join-attribute space (Sec. V). One codec instance is shared by all nodes
/// and the base station during an execution: nodes encode their
/// join-attribute tuples to keys; the base station decodes keys back to
/// per-dimension cell intervals for the conservative filter join.
///
/// A key is (relation flags, Z-number): the flags occupy the topmost digit
/// (the topmost index node of the quadtree represents the relation flags;
/// Sec. V-C), the Z-number interleaves the quantized coordinates.
class JoinAttrCodec {
 public:
  /// `flag_bits` is the number of distinct relations in the query (each
  /// relation gets one membership bit).
  JoinAttrCodec(Quantizer quantizer, int flag_bits);

  const Quantizer& quantizer() const { return quantizer_; }
  const ZOrder& zorder() const { return zorder_; }
  int flag_bits() const { return flag_bits_; }

  const std::shared_ptr<const PointSetLayout>& layout() const {
    return layout_;
  }

  /// An empty Join_Attr_Structure under this codec's layout.
  PointSet EmptySet() const { return PointSet(layout_); }

  /// Encodes a join-attribute tuple: `values` holds one raw value per
  /// quantizer dimension (in dimension order); `flags` is the node's
  /// relation-membership bitmap (must be non-zero).
  uint64_t EncodeTuple(const std::vector<double>& values, uint8_t flags) const;

  uint8_t KeyFlags(uint64_t key) const { return layout_->FlagsOfKey(key); }

  /// Per-dimension cell coordinates of `key`.
  std::vector<uint32_t> KeyCoordinates(uint64_t key) const;

  /// Per-dimension intervals of raw values covered by `key`'s cell; the
  /// input to conservative predicate evaluation.
  std::vector<query::Interval> KeyIntervals(uint64_t key) const;

  /// Representative raw values (cell centers) of `key`.
  std::vector<double> KeyCenters(uint64_t key) const;

 private:
  Quantizer quantizer_;
  ZOrder zorder_;
  int flag_bits_;
  std::shared_ptr<const PointSetLayout> layout_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_JOIN_ATTR_CODEC_H_
