#include "sensjoin/join/result.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "sensjoin/common/logging.h"
#include "sensjoin/query/expr_eval.h"

namespace sensjoin::join {
namespace {

/// ScalarContext over an in-progress table->tuple assignment.
class AssignmentContext : public query::ScalarContext {
 public:
  explicit AssignmentContext(const std::vector<const data::Tuple*>* assignment)
      : assignment_(assignment) {}

  double Value(int table_index, int attr_index) const override {
    const data::Tuple* t = (*assignment_)[table_index];
    SENSJOIN_DCHECK(t != nullptr);
    return t->values[attr_index];
  }

 private:
  const std::vector<const data::Tuple*>* assignment_;
};

/// Running state of one aggregate SELECT item.
struct Accumulator {
  query::AggregateKind kind = query::AggregateKind::kNone;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  uint64_t count = 0;

  void Update(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    ++count;
  }

  double Finish() const {
    switch (kind) {
      case query::AggregateKind::kMin:
        return count ? min : std::numeric_limits<double>::quiet_NaN();
      case query::AggregateKind::kMax:
        return count ? max : std::numeric_limits<double>::quiet_NaN();
      case query::AggregateKind::kSum:
        return sum;
      case query::AggregateKind::kAvg:
        return count ? sum / static_cast<double>(count)
                     : std::numeric_limits<double>::quiet_NaN();
      case query::AggregateKind::kCount:
        return static_cast<double>(count);
      case query::AggregateKind::kNone:
        break;
    }
    SENSJOIN_CHECK(false) << "not an aggregate";
    return 0.0;
  }
};

}  // namespace

JoinResult ComputeExactJoin(
    const query::AnalyzedQuery& q,
    const std::vector<std::vector<const data::Tuple*>>& per_table_tuples) {
  const int num_tables = q.num_tables();
  SENSJOIN_CHECK_EQ(static_cast<int>(per_table_tuples.size()), num_tables);

  JoinResult result;

  // Output columns.
  if (q.select_star()) {
    for (int t = 0; t < num_tables; ++t) {
      for (int a = 0; a < q.schema().num_attributes(); ++a) {
        result.column_labels.push_back(q.table(t).alias + "." +
                                       q.schema().attribute(a).name);
      }
    }
  } else {
    for (const query::SelectItem& item : q.select()) {
      result.column_labels.push_back(item.label);
    }
  }

  std::vector<Accumulator> accumulators;
  if (q.has_aggregates()) {
    accumulators.resize(q.select().size());
    for (size_t i = 0; i < q.select().size(); ++i) {
      accumulators[i].kind = q.select()[i].aggregate;
    }
  }

  // Join predicates grouped by the last table they reference.
  std::vector<std::vector<const query::Expr*>> preds_at(num_tables);
  for (const auto& p : q.join_predicates()) {
    std::set<int> tables;
    p->CollectTableIndices(&tables);
    SENSJOIN_CHECK(!tables.empty());
    preds_at[*tables.rbegin()].push_back(p.get());
  }

  std::vector<const data::Tuple*> assignment(num_tables, nullptr);
  AssignmentContext ctx(&assignment);
  std::set<sim::NodeId> contributors;

  std::function<void(int)> dfs = [&](int t) {
    if (t == num_tables) {
      ++result.matched_combinations;
      for (const data::Tuple* tup : assignment) contributors.insert(tup->node);
      if (q.has_aggregates()) {
        for (size_t i = 0; i < q.select().size(); ++i) {
          const query::SelectItem& item = q.select()[i];
          const double v = item.expr != nullptr
                               ? query::EvalScalar(*item.expr, ctx)
                               : 1.0;  // COUNT(*)
          accumulators[i].Update(v);
        }
      } else {
        std::vector<double> row;
        if (q.select_star()) {
          row.reserve(static_cast<size_t>(num_tables) *
                      q.schema().num_attributes());
          for (const data::Tuple* tup : assignment) {
            row.insert(row.end(), tup->values.begin(), tup->values.end());
          }
        } else {
          row.reserve(q.select().size());
          for (const query::SelectItem& item : q.select()) {
            row.push_back(query::EvalScalar(*item.expr, ctx));
          }
        }
        result.rows.push_back(std::move(row));
        std::set<sim::NodeId> row_contributors;
        for (const data::Tuple* tup : assignment) {
          row_contributors.insert(tup->node);
        }
        result.row_nodes.emplace_back(row_contributors.begin(),
                                      row_contributors.end());
      }
      return;
    }
    for (const data::Tuple* tup : per_table_tuples[t]) {
      assignment[t] = tup;
      bool alive = true;
      for (const query::Expr* p : preds_at[t]) {
        if (!query::EvalPredicate(*p, ctx)) {
          alive = false;
          break;
        }
      }
      if (alive) dfs(t + 1);
    }
    assignment[t] = nullptr;
  };
  dfs(0);

  if (q.has_aggregates()) {
    std::vector<double> row;
    row.reserve(accumulators.size());
    for (const Accumulator& acc : accumulators) row.push_back(acc.Finish());
    result.rows.push_back(std::move(row));
  }

  result.contributing_nodes.assign(contributors.begin(), contributors.end());
  return result;
}

}  // namespace sensjoin::join
