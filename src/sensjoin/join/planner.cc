#include "sensjoin/join/planner.h"

#include <cmath>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {

const char* JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kSensJoin:
      return "SENS-Join";
    case JoinMethod::kExternalJoin:
      return "external join";
  }
  return "?";
}

PlanEstimate EstimatePlan(const net::RoutingTree& tree,
                          const std::vector<char>& participates,
                          const PlannerParams& params) {
  SENSJOIN_CHECK_EQ(static_cast<int>(participates.size()), tree.num_nodes());
  SENSJOIN_CHECK_GT(params.payload_capacity, 0);
  const double capacity = params.payload_capacity;
  const double b = params.full_tuple_bytes;
  const double bj = params.join_attr_raw_bytes;
  const double q = params.quadtree_ratio;
  const double f = params.expected_fraction;

  // Participants below (and including) each node.
  std::vector<int> below(tree.num_nodes(), 0);
  for (sim::NodeId u : tree.collection_order()) {
    below[u] += participates[u] ? 1 : 0;
    if (tree.parent(u) != sim::kInvalidNode) below[tree.parent(u)] += below[u];
  }

  PlanEstimate estimate;
  for (sim::NodeId u : tree.collection_order()) {
    if (u == tree.root() || below[u] == 0) continue;
    const double subtree_tuples = below[u];
    const double full_bytes = subtree_tuples * b;

    // External join: forward all complete tuples.
    estimate.external += std::ceil(full_bytes / capacity);

    // SENS-Join collection: Treecut near the leaves, compact structures
    // above.
    if (full_bytes <= params.dmax_bytes) {
      estimate.collection += std::ceil(full_bytes / capacity);
    } else {
      const double struct_bytes = subtree_tuples * bj * q;
      estimate.collection += std::ceil(std::max(1.0, struct_bytes) / capacity);
    }

    // Filter / final phases involve the subtree only if it holds a result
    // tuple; Treecut-exited subtrees never do more work.
    if (full_bytes <= params.dmax_bytes) continue;
    const double involved = 1.0 - std::pow(1.0 - f, subtree_tuples);
    const double matching = f * subtree_tuples;
    estimate.filter +=
        involved * std::ceil(std::max(1.0, matching * bj * q) / capacity);
    estimate.final_phase +=
        involved * std::ceil(std::max(1.0, matching * b) / capacity);
  }
  return estimate;
}

JoinMethod ChoosePlan(const net::RoutingTree& tree,
                      const std::vector<char>& participates,
                      const PlannerParams& params) {
  return EstimatePlan(tree, participates, params).Choice();
}

}  // namespace sensjoin::join
