#ifndef SENSJOIN_JOIN_EXECUTOR_CONTEXT_H_
#define SENSJOIN_JOIN_EXECUTOR_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sensjoin/data/network_data.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::join {

/// Per-execution node-side state shared by the join executors: which
/// relations each node contributes to (membership and pushed-down
/// selections applied, Fig. 1 line 9), its sensed snapshot tuple, and the
/// wire size of the attributes it would ship.
class ExecutorContext {
 public:
  /// Senses every node once for `epoch` (ONCE semantics: sensors are read
  /// exactly once per execution; Sec. IV-D).
  ExecutorContext(const data::NetworkData& data,
                  const query::AnalyzedQuery& q, uint64_t epoch);

  struct NodeInfo {
    /// Bit r set iff the node contributes a tuple through some FROM entry
    /// of the r-th distinct relation (selection predicates applied).
    uint8_t membership = 0;
    bool has_tuple = false;  ///< membership != 0
    data::Tuple tuple;       ///< full sensed tuple (valid iff has_tuple)
    /// Wire bytes of the shipped projection of this node's tuple.
    int full_tuple_bytes = 0;
  };

  const NodeInfo& info(sim::NodeId id) const { return infos_[id]; }
  int num_nodes() const { return static_cast<int>(infos_.size()); }

  const query::AnalyzedQuery& query() const { return *query_; }
  const std::vector<std::string>& relation_names() const {
    return relation_names_;
  }
  int num_relations() const { return static_cast<int>(relation_names_.size()); }

  /// True if `tuple` qualifies for FROM entry `table` (relation membership
  /// of the owning node and the table's selection predicate).
  bool PassesTable(const data::Tuple& tuple, int table) const;

  /// Splits `candidates` (borrowed) into per-table tuple lists for the
  /// base station's exact join.
  std::vector<std::vector<const data::Tuple*>> PerTableCandidates(
      const std::vector<data::Tuple>& candidates) const;

 private:
  const data::NetworkData* data_;
  const query::AnalyzedQuery* query_;
  std::vector<std::string> relation_names_;
  std::vector<int> table_relation_bit_;
  std::vector<NodeInfo> infos_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_EXECUTOR_CONTEXT_H_
