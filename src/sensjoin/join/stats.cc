#include "sensjoin/join/stats.h"

#include <algorithm>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {
namespace {

uint64_t JoinPacketsOfNode(const sim::NodeStats& s) {
  return s.packets_sent_by_kind[static_cast<size_t>(
             sim::MessageKind::kCollection)] +
         s.packets_sent_by_kind[static_cast<size_t>(
             sim::MessageKind::kFilter)] +
         s.packets_sent_by_kind[static_cast<size_t>(sim::MessageKind::kFinal)];
}

}  // namespace

uint64_t CostReport::max_node_packets() const {
  uint64_t m = 0;
  for (uint64_t v : per_node_packets) m = std::max(m, v);
  return m;
}

StatsSnapshot::StatsSnapshot(const sim::Simulator& sim)
    : collection_(
          sim.packets_sent_by_kind(sim::MessageKind::kCollection)),
      filter_(sim.packets_sent_by_kind(sim::MessageKind::kFilter)),
      final_(sim.packets_sent_by_kind(sim::MessageKind::kFinal)),
      bytes_(sim.total_bytes_sent()),
      energy_(sim.total_energy_mj()),
      retransmitted_(sim.total_packets_retransmitted()),
      acks_(sim.total_ack_packets()),
      retransmit_energy_(sim.retransmit_energy_mj()),
      ack_energy_(sim.ack_energy_mj()),
      corrupted_(sim.total_corrupted_packets()),
      undetected_corrupted_(sim.total_undetected_corrupted_packets()),
      crc_bytes_(sim.crc_bytes_sent()),
      integrity_retransmit_energy_(sim.integrity_retransmit_energy_mj()),
      crc_energy_(sim.crc_energy_mj()),
      repair_packets_(sim.repair_packets_sent()),
      repair_bytes_(sim.repair_bytes_sent()),
      repair_energy_(sim.repair_energy_mj()),
      duplicates_(sim.total_duplicate_packets()),
      replays_(sim.total_replayed_packets()),
      duplicate_energy_(sim.duplicate_energy_mj()),
      replay_energy_(sim.replay_energy_mj()) {
  per_node_join_packets_.resize(sim.num_nodes());
  for (int i = 0; i < sim.num_nodes(); ++i) {
    per_node_join_packets_[i] = JoinPacketsOfNode(sim.stats(i));
  }
}

CostReport StatsSnapshot::DeltaTo(const sim::Simulator& sim) const {
  CostReport report;
  report.phases.collection_packets =
      sim.packets_sent_by_kind(sim::MessageKind::kCollection) - collection_;
  report.phases.filter_packets =
      sim.packets_sent_by_kind(sim::MessageKind::kFilter) - filter_;
  report.phases.final_packets =
      sim.packets_sent_by_kind(sim::MessageKind::kFinal) - final_;
  report.join_packets = report.phases.total();
  report.join_bytes = sim.total_bytes_sent() - bytes_;
  report.energy_mj = sim.total_energy_mj() - energy_;
  report.retransmitted_packets =
      sim.total_packets_retransmitted() - retransmitted_;
  report.ack_packets = sim.total_ack_packets() - acks_;
  report.retransmit_energy_mj = sim.retransmit_energy_mj() - retransmit_energy_;
  report.ack_energy_mj = sim.ack_energy_mj() - ack_energy_;
  report.corrupted_packets = sim.total_corrupted_packets() - corrupted_;
  report.undetected_corrupted_packets =
      sim.total_undetected_corrupted_packets() - undetected_corrupted_;
  report.crc_bytes_sent = sim.crc_bytes_sent() - crc_bytes_;
  report.integrity_retransmit_energy_mj =
      sim.integrity_retransmit_energy_mj() - integrity_retransmit_energy_;
  report.crc_energy_mj = sim.crc_energy_mj() - crc_energy_;
  report.repair_packets = sim.repair_packets_sent() - repair_packets_;
  report.repair_bytes_sent = sim.repair_bytes_sent() - repair_bytes_;
  report.repair_energy_mj = sim.repair_energy_mj() - repair_energy_;
  report.duplicate_packets = sim.total_duplicate_packets() - duplicates_;
  report.replayed_packets = sim.total_replayed_packets() - replays_;
  report.duplicate_energy_mj = sim.duplicate_energy_mj() - duplicate_energy_;
  report.replay_energy_mj = sim.replay_energy_mj() - replay_energy_;
  SENSJOIN_CHECK_EQ(static_cast<int>(per_node_join_packets_.size()),
                    sim.num_nodes());
  report.per_node_packets.resize(sim.num_nodes());
  for (int i = 0; i < sim.num_nodes(); ++i) {
    report.per_node_packets[i] =
        JoinPacketsOfNode(sim.stats(i)) - per_node_join_packets_[i];
  }
  return report;
}

}  // namespace sensjoin::join
