#include "sensjoin/join/executor_context.h"

#include <set>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/query/expr_eval.h"

namespace sensjoin::join {
namespace {

/// Evaluates table `t`'s selection over `tuple` standing in for that table.
bool PassesSelection(const query::AnalyzedQuery& q, int t,
                     const data::Tuple& tuple) {
  const query::Expr* selection = q.table(t).selection.get();
  if (selection == nullptr) return true;
  std::vector<const data::Tuple*> assignment(q.num_tables(), nullptr);
  assignment[t] = &tuple;
  query::TupleContext ctx(std::move(assignment));
  return query::EvalPredicate(*selection, ctx);
}

}  // namespace

ExecutorContext::ExecutorContext(const data::NetworkData& data,
                                 const query::AnalyzedQuery& q,
                                 uint64_t epoch)
    : data_(&data), query_(&q) {
  relation_names_ = q.RelationNames();
  table_relation_bit_ = TableRelationBits(q);
  SENSJOIN_CHECK_LE(relation_names_.size(), 6u);

  // Shipped-projection wire bytes per membership mask.
  std::vector<int> bytes_by_membership(1 << relation_names_.size(), 0);
  for (int mask = 1; mask < (1 << static_cast<int>(relation_names_.size()));
       ++mask) {
    std::set<int> attrs;
    for (size_t r = 0; r < relation_names_.size(); ++r) {
      if ((mask >> r) & 1) {
        const std::vector<int> idx = q.UnionQueriedAttrIndices(
            relation_names_[r]);
        attrs.insert(idx.begin(), idx.end());
      }
    }
    bytes_by_membership[mask] = q.schema().ProjectionWireBytes(
        std::vector<int>(attrs.begin(), attrs.end()));
  }

  infos_.resize(data.num_nodes());
  for (sim::NodeId id = 0; id < data.num_nodes(); ++id) {
    NodeInfo& info = infos_[id];
    // The base station (node 0) is a powered access point, not a sensor
    // tuple source.
    if (id == 0) continue;
    data::Tuple tuple = data.Sense(id, epoch);
    uint8_t membership = 0;
    for (int t = 0; t < q.num_tables(); ++t) {
      const int r = table_relation_bit_[t];
      if (!data.BelongsTo(id, relation_names_[r])) continue;
      if (!PassesSelection(q, t, tuple)) continue;
      membership |= static_cast<uint8_t>(1u << r);
    }
    if (membership == 0) continue;
    info.membership = membership;
    info.has_tuple = true;
    info.tuple = std::move(tuple);
    info.full_tuple_bytes = bytes_by_membership[membership];
  }
}

bool ExecutorContext::PassesTable(const data::Tuple& tuple, int table) const {
  const int r = table_relation_bit_[table];
  if (!data_->BelongsTo(tuple.node, relation_names_[r])) return false;
  return PassesSelection(*query_, table, tuple);
}

std::vector<std::vector<const data::Tuple*>> ExecutorContext::
    PerTableCandidates(const std::vector<data::Tuple>& candidates) const {
  std::vector<std::vector<const data::Tuple*>> per_table(query_->num_tables());
  for (const data::Tuple& tuple : candidates) {
    for (int t = 0; t < query_->num_tables(); ++t) {
      if (PassesTable(tuple, t)) per_table[t].push_back(&tuple);
    }
  }
  return per_table;
}

}  // namespace sensjoin::join
