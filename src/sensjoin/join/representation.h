#ifndef SENSJOIN_JOIN_REPRESENTATION_H_
#define SENSJOIN_JOIN_REPRESENTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/join/protocol.h"

namespace sensjoin::join {

/// Serializes a point set as plain quantized tuples: two bytes per
/// dimension per point, points in key (Z-) order. This is both the
/// "no compact representation" wire format and the input handed to the
/// general-purpose compressors in the Sec. VI-B comparison.
std::vector<uint8_t> SerializePointsRaw(const PointSet& set,
                                        const JoinAttrCodec& codec);

/// Wire size in bytes of a Join_Attr_Structure under the chosen
/// representation. For the compressed representations this runs the actual
/// codec on the raw serialization — mirroring the per-hop
/// decompress/recompress cycle the paper charges against them.
size_t StructureWireBytes(const PointSet& set, const JoinAttrCodec& codec,
                          JoinAttrRepresentation representation);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_REPRESENTATION_H_
