#ifndef SENSJOIN_JOIN_ALT_BASELINES_H_
#define SENSJOIN_JOIN_ALT_BASELINES_H_

#include <cstdint>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// Specialized join methods from the related work (Sec. II), generalized to
/// arbitrary tuple placements so they can run on the paper's workloads at
/// all. The paper reports that the external join outperforms them in every
/// experiment because their efficiency assumptions (two small, nearby
/// regions; very high selectivity) do not hold for general-purpose queries;
/// these executors let the benchmark suite reproduce that comparison.

/// Semi-join in the style of Coman et al. [8]: the join-attribute values of
/// the first relation are collected and then broadcast over the nodes of
/// the second relation (with arbitrary placements: flooded through the
/// network); nodes of the second relation that find a partner ship their
/// complete tuples, and the first relation ships its complete tuples
/// unconditionally. The base station computes the result.
class SemiJoinExecutor {
 public:
  SemiJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                   const data::NetworkData& data,
                   ProtocolConfig config = ProtocolConfig{});

  StatusOr<ExecutionReport> Execute(const query::AnalyzedQuery& q,
                                    uint64_t epoch);

 private:
  sim::Simulator& sim_;
  net::RoutingTree tree_;
  const data::NetworkData& data_;
  ProtocolConfig config_;
};

/// Mediated join in the style of Coman et al. [8]: all input tuples are
/// routed to a mediator node inside the network (the participant closest to
/// the centroid of the contributing nodes), which computes the join and
/// ships the result rows to the base station. Efficient only when the
/// inputs are co-located and the result is small.
class MediatedJoinExecutor {
 public:
  MediatedJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                       const data::NetworkData& data,
                       ProtocolConfig config = ProtocolConfig{});

  StatusOr<ExecutionReport> Execute(const query::AnalyzedQuery& q,
                                    uint64_t epoch);

  /// The mediator chosen by the last Execute call.
  sim::NodeId last_mediator() const { return last_mediator_; }

 private:
  sim::Simulator& sim_;
  net::RoutingTree tree_;
  const data::NetworkData& data_;
  ProtocolConfig config_;
  sim::NodeId last_mediator_ = sim::kInvalidNode;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_ALT_BASELINES_H_
