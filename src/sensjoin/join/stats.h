#ifndef SENSJOIN_JOIN_STATS_H_
#define SENSJOIN_JOIN_STATS_H_

#include <cstdint>
#include <vector>

#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// Join-processing transmissions broken down by protocol step (Fig. 15).
/// The external join reports everything under `final`.
struct PhaseCosts {
  uint64_t collection_packets = 0;  ///< step 1a (incl. Treecut full tuples)
  uint64_t filter_packets = 0;      ///< step 1b
  uint64_t final_packets = 0;       ///< final result computation

  uint64_t total() const {
    return collection_packets + filter_packets + final_packets;
  }
};

/// Communication costs of one query execution, derived from simulator
/// counter deltas. `per_node_packets` counts join-processing transmissions
/// per node (the paper's per-node metric, Fig. 11).
struct CostReport {
  PhaseCosts phases;
  uint64_t join_packets = 0;  ///< == phases.total()
  uint64_t join_bytes = 0;    ///< frame bytes of join-processing traffic
  double energy_mj = 0.0;     ///< tx+rx energy over the execution
  std::vector<uint64_t> per_node_packets;

  /// ARQ fault-tolerance overhead over the execution. Retransmitted data
  /// fragments are included in the packet totals above and itemized here;
  /// ack frames are energy-only (outside the paper's packet metric).
  uint64_t retransmitted_packets = 0;
  uint64_t ack_packets = 0;
  double retransmit_energy_mj = 0.0;  ///< energy of retransmitted frames
  double ack_energy_mj = 0.0;         ///< tx+rx energy of ack frames

  /// Integrity-layer overhead (zero unless a corruption model is active).
  /// Detected corruptions are fragments the receiver's CRC rejected;
  /// undetected ones were accepted with a damaged payload (CRC disabled).
  /// Integrity retransmissions are the ARQ subset triggered by CRC
  /// rejections; their energy is inside retransmit_energy_mj and itemized
  /// here. CRC trailer bytes are inside join_bytes and itemized here.
  uint64_t corrupted_packets = 0;
  uint64_t undetected_corrupted_packets = 0;
  uint64_t crc_bytes_sent = 0;
  double integrity_retransmit_energy_mj = 0.0;
  double crc_energy_mj = 0.0;

  /// In-network tree-repair overhead (zero unless repair ran). Repair
  /// packets ride MessageKind::kRepair: outside the paper's join-packet
  /// metric (like beacons) but inside the energy totals, and itemized here
  /// so the repair-vs-re-execution tradeoff is visible in reports.
  uint64_t repair_packets = 0;
  uint64_t repair_bytes_sent = 0;
  double repair_energy_mj = 0.0;

  /// Delivery-fault overhead (zero unless a fault plan enables the axes).
  /// Duplicate packets are fragments receivers heard more than once — ARQ
  /// retransmissions whose ack was lost plus the fragments of duplicated
  /// logical deliveries; replayed packets are fragments re-heard when an
  /// aborted attempt's in-flight messages were re-delivered. Both are
  /// inside the rx/energy totals and itemized here.
  uint64_t duplicate_packets = 0;
  uint64_t replayed_packets = 0;
  double duplicate_energy_mj = 0.0;
  double replay_energy_mj = 0.0;

  uint64_t max_node_packets() const;
};

/// Captures simulator counters so that a later delta isolates one
/// execution's costs (beacons and query floods are excluded from
/// join_packets but included in energy).
class StatsSnapshot {
 public:
  explicit StatsSnapshot(const sim::Simulator& sim);

  /// Costs accrued on `sim` since this snapshot was taken.
  CostReport DeltaTo(const sim::Simulator& sim) const;

 private:
  uint64_t collection_;
  uint64_t filter_;
  uint64_t final_;
  uint64_t bytes_;
  double energy_;
  uint64_t retransmitted_;
  uint64_t acks_;
  double retransmit_energy_;
  double ack_energy_;
  uint64_t corrupted_;
  uint64_t undetected_corrupted_;
  uint64_t crc_bytes_;
  double integrity_retransmit_energy_;
  double crc_energy_;
  uint64_t repair_packets_;
  uint64_t repair_bytes_;
  double repair_energy_;
  uint64_t duplicates_;
  uint64_t replays_;
  double duplicate_energy_;
  double replay_energy_;
  std::vector<uint64_t> per_node_join_packets_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_STATS_H_
