#include "sensjoin/join/external_join.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/net/tree_maintenance.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/sim/parallel_engine.h"

namespace sensjoin::join {

ExternalJoinExecutor::ExternalJoinExecutor(sim::Simulator& sim,
                                           net::RoutingTree tree,
                                           const data::NetworkData& data,
                                           ProtocolConfig config)
    : sim_(sim), tree_(std::move(tree)), data_(data), config_(config) {}

StatusOr<ExecutionReport> ExternalJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  size_t repairs_attempted_total = 0;
  size_t repairs_succeeded_total = 0;
  size_t watchdog_expirations_total = 0;
  const StatsSnapshot execute_snapshot(sim_);

  // Exactly-once validation, mirroring the SENS-Join executor: unicasts are
  // stamped, queue-level deliveries classified; verdicts drive counters and
  // trace events only (state is applied inline at send time), keeping
  // fault-free runs bit-identical to the seed.
  DeliveryGuard guard(
      config_.dedup_window,
      config_.charge_tag_wire_bytes ? config_.tag_wire_bytes : 0,
      sim_.num_nodes());
  auto previous_handler = sim_.SetReceiveHandler(
      [this, &guard](sim::NodeId receiver, const sim::Message& msg) {
        const DeliveryVerdict verdict = guard.Classify(receiver, msg);
        if (verdict == DeliveryVerdict::kStale && obs::kTracingCompiledIn &&
            sim_.tracer() != nullptr && sim_.tracer()->enabled()) {
          sim_.tracer()->Record(obs::EventKind::kStaleDrop, sim_.now(),
                                receiver, msg.src, msg.kind, /*count=*/1,
                                /*bytes=*/0, /*energy_mj=*/0.0,
                                /*detail=*/msg.tag.attempt_id);
        }
      });
  struct HandlerRestore {
    sim::Simulator& sim;
    sim::Simulator::ReceiveHandler previous;
    ~HandlerRestore() { sim.SetReceiveHandler(std::move(previous)); }
  } handler_restore{sim_, std::move(previous_handler)};

  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    guard.BeginAttempt(static_cast<uint32_t>(attempt));
    // In-flight messages captured from an aborted attempt are re-delivered
    // now; the guard classifies them as stale (their attempt id is old).
    sim_.ReleaseReplays();
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();
    bool ok;
    {
      obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                            obs::Phase::kExternalCollection);
      ok = ExecuteAttempt(q, epoch, &guard, &report);
      // Capture still-flying deliveries of an aborted attempt for replay
      // before the drain delivers them normally.
      if (!ok) sim_.NotifyAttemptAbort();
      // Drain in-flight events inside the phase span on both paths; the
      // failure path used to drain right after the attempt anyway.
      sim_.events().Run();
      sim_.events().ShrinkToFit();
    }
    if (ok) {
      report.success = true;
      report.repairs_attempted += repairs_attempted_total;
      report.repairs_succeeded += repairs_succeeded_total;
      report.watchdog_expirations += watchdog_expirations_total;
      report.duplicate_deliveries = guard.duplicate_deliveries();
      report.stale_messages_dropped = guard.stale_drops();
      report.reordered_messages = guard.reordered_deliveries();
      SENSJOIN_CHECK_EQ(guard.phantom_deliveries(), 0u)
          << "delivery validator saw a tag that was never stamped";
      report.cost = snapshot.DeltaTo(sim_);
      report.total_cost = execute_snapshot.DeltaTo(sim_);
      report.response_time_s = sim_.now() - start_time;
      return report;
    }
    repairs_attempted_total += report.repairs_attempted;
    repairs_succeeded_total += report.repairs_succeeded;
    watchdog_expirations_total += report.watchdog_expirations;
    // Link failure mid-execution: wait out the CTP repair window (scheduled
    // node recoveries can fire meanwhile), let the tree protocol repair the
    // routes, and re-execute (Sec. IV-F).
    if (config_.retry_backoff_s > 0) {
      sim_.events().RunUntil(sim_.now() + config_.retry_backoff_s);
    }
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
  }
  return Status::ResourceExhausted(
      "external join failed after retries (network partitioned?)");
}

bool ExternalJoinExecutor::ExecuteAttempt(const query::AnalyzedQuery& q,
                                          uint64_t epoch, DeliveryGuard* guard,
                                          ExecutionReport* report) {
  const ExecutorContext ctx(data_, q, epoch);

  // Stamp-before-send wrapper: a failed send retracts its tag so the
  // ordering check never waits on a delivery that cannot come.
  auto send_tagged = [this, guard](sim::Message msg,
                                   bool* corrupted = nullptr) -> bool {
    guard->Stamp(msg);
    if (sim_.SendUnicast(msg, corrupted)) return true;
    guard->Retract(msg);
    return false;
  };
  const int n = sim_.num_nodes();
  const sim::NodeId root = tree_.root();
  // Tuples waiting at each node to be forwarded upward.
  std::vector<std::vector<data::Tuple>> pending(n);
  std::vector<data::Tuple> base_candidates;

  // Self-healing machinery, mirroring the SENS-Join executor (all inert
  // under the default config; see sens_join.h for the escalation order).
  std::set<sim::NodeId> excluded;
  std::vector<sim::NodeId> excluded_roots;
  std::vector<sim::NodeId> repaired_roots;
  std::optional<net::TreeMaintenance> maintenance;
  if (config_.enable_tree_repair) {
    net::TreeMaintenanceConfig mc;
    mc.max_repair_rounds = config_.max_repair_rounds;
    mc.round_wait_s = config_.repair_round_wait_s;
    mc.stamp = [guard](sim::Message& m) { guard->Stamp(m); };
    mc.retract = [guard](const sim::Message& m) { guard->Retract(m); };
    maintenance.emplace(sim_, tree_, mc);
  }
  auto trace_on = [this] {
    return obs::kTracingCompiledIn && sim_.tracer() != nullptr &&
           sim_.tracer()->enabled();
  };
  auto repair_parent_ok = [&](sim::NodeId cand) {
    for (sim::NodeId v = cand; v != root; v = tree_.parent(v)) {
      if (excluded.count(v) != 0) return false;
    }
    return true;
  };
  const double phase_deadline =
      config_.enable_phase_watchdog
          ? sim_.now() + config_.watchdog_base_s +
                tree_.max_depth() * sim_.per_packet_latency_s() *
                    config_.watchdog_per_hop_factor
          : sim::kSimTimeMax;
  auto watchdog_expired = [&]() {
    if (sim_.now() <= phase_deadline) return false;
    ++report->watchdog_expirations;
    if (trace_on()) {
      sim_.tracer()->Record(
          obs::EventKind::kDeadlineExpired, sim_.now(), root,
          sim::kInvalidNode, sim::MessageKind::kControl, /*count=*/0,
          /*bytes=*/0, /*energy_mj=*/0.0,
          /*detail=*/static_cast<uint32_t>(obs::Phase::kExternalCollection));
    }
    return true;
  };

  // Collection-turn flags: repairs mutate the tree mid-phase, so the
  // traversal iterates an order snapshot and rescued contributions are
  // relayed through already-processed nodes.
  std::vector<char> done(n, 0);

  // Escalation for a persistent upward-send failure at `u`. Returns false
  // only when the attempt must abort (full re-execution).
  auto rescue = [&](sim::NodeId u, std::vector<data::Tuple> contribution,
                    size_t payload) -> bool {
    std::vector<sim::NodeId> lost;
    lost.reserve(contribution.size());
    for (const data::Tuple& t : contribution) lost.push_back(t.node);
    auto degrade = [&]() -> bool {
      if (!config_.enable_graceful_degradation) return false;
      excluded_roots.push_back(u);
      excluded.insert(lost.begin(), lost.end());
      return true;
    };
    if (watchdog_expired()) return degrade();
    if (!maintenance) return degrade();
    ++report->repairs_attempted;
    if (!maintenance->Repair(u, repair_parent_ok)) return degrade();
    ++report->repairs_succeeded;
    repaired_roots.push_back(u);
    sim::NodeId v = u;
    for (;;) {
      const sim::NodeId dst = tree_.parent(v);
      sim::Message msg;
      msg.src = v;
      msg.dst = dst;
      msg.kind = sim::MessageKind::kFinal;
      msg.payload_bytes = payload;
      bool corrupted = false;
      if (!send_tagged(std::move(msg), &corrupted)) return degrade();
      if (corrupted) {
        ++report->corrupted_deliveries;
        return true;
      }
      v = dst;
      if (!done[v]) break;  // v's turn is still to come: it buffers
    }
    std::vector<data::Tuple>& up = pending[v];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
    return true;
  };

  // Windowed execution: same structure as the SENS-Join executor — direct
  // writes stay inside the turn's subtree partition, merges into the base
  // station's pending list go through engine.Defer, and fault-handling
  // branches (rescues, corrupted deliveries) only run under the sequential
  // fallback (sim::Simulator::WindowSafe).
  sim::ParallelEngine& engine = sim_.engine();
  const sim::PartitionMap parts =
      sim::PartitionMap::FromParents(tree_.parents(), root);
  bool failed = false;
  const std::vector<sim::NodeId> order = tree_.collection_order();
  engine.RunTurns(parts, order, [&](sim::NodeId u,
                                    sim::ParallelEngine::Scratch&) {
    if (failed) return;  // a prior turn aborted the attempt
    done[u] = 1;
    std::vector<data::Tuple> contribution = std::move(pending[u]);
    if (ctx.info(u).has_tuple) contribution.push_back(ctx.info(u).tuple);
    if (u == root) {
      base_candidates = std::move(contribution);
      return;
    }
    if (contribution.empty()) return;

    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    bool corrupted = false;
    if (!send_tagged(std::move(msg), &corrupted)) {
      if (!rescue(u, std::move(contribution), payload)) failed = true;
      return;
    }
    if (corrupted) {
      // With the CRC trailer off, garbled tuples slip through the link
      // layer but are unusable: the subtree's rows are lost.
      ++report->corrupted_deliveries;
      return;
    }
    const sim::NodeId parent = tree_.parent(u);
    if (parts.SamePartition(u, parent)) {
      std::vector<data::Tuple>& up = pending[parent];
      up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                std::make_move_iterator(contribution.end()));
    } else {
      engine.Defer([&up = pending[parent],
                    contribution = std::move(contribution)]() mutable {
        up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                  std::make_move_iterator(contribution.end()));
      });
    }
  });
  if (failed) return false;

  report->candidate_tuples = base_candidates.size();
  report->result = ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));

  // Completeness certificate (never-reachable nodes always count; see
  // sens_join.cc for the rationale).
  for (sim::NodeId u : tree_.UnreachableNodes()) {
    if (excluded.insert(u).second) excluded_roots.push_back(u);
  }
  CompletenessCertificate& cert = report->certificate;
  cert.excluded_nodes.assign(excluded.begin(), excluded.end());
  std::sort(excluded_roots.begin(), excluded_roots.end());
  excluded_roots.erase(
      std::unique(excluded_roots.begin(), excluded_roots.end()),
      excluded_roots.end());
  cert.excluded_subtree_roots = std::move(excluded_roots);
  std::sort(repaired_roots.begin(), repaired_roots.end());
  repaired_roots.erase(
      std::unique(repaired_roots.begin(), repaired_roots.end()),
      repaired_roots.end());
  cert.repaired_roots = std::move(repaired_roots);
  cert.total_nodes = n;
  cert.reporting_nodes = n - static_cast<int>(cert.excluded_nodes.size());
  cert.degraded = !cert.excluded_nodes.empty();
  if (cert.degraded && trace_on()) {
    sim_.tracer()->Record(obs::EventKind::kDegradedResult, sim_.now(), root,
                          sim::kInvalidNode, sim::MessageKind::kControl,
                          static_cast<uint32_t>(cert.excluded_nodes.size()),
                          /*bytes=*/0, /*energy_mj=*/0.0);
  }
  return true;
}

}  // namespace sensjoin::join
