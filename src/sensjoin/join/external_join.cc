#include "sensjoin/join/external_join.h"

#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::join {

ExternalJoinExecutor::ExternalJoinExecutor(sim::Simulator& sim,
                                           net::RoutingTree tree,
                                           const data::NetworkData& data,
                                           ProtocolConfig config)
    : sim_(sim), tree_(std::move(tree)), data_(data), config_(config) {}

StatusOr<ExecutionReport> ExternalJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();
    bool ok;
    {
      obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                            obs::Phase::kExternalCollection);
      ok = ExecuteAttempt(q, epoch, &report);
      // Drain in-flight events inside the phase span on both paths; the
      // failure path used to drain right after the attempt anyway.
      sim_.events().Run();
    }
    if (ok) {
      report.success = true;
      report.cost = snapshot.DeltaTo(sim_);
      report.response_time_s = sim_.now() - start_time;
      return report;
    }
    // Link failure mid-execution: wait out the CTP repair window (scheduled
    // node recoveries can fire meanwhile), let the tree protocol repair the
    // routes, and re-execute (Sec. IV-F).
    if (config_.retry_backoff_s > 0) {
      sim_.events().RunUntil(sim_.now() + config_.retry_backoff_s);
    }
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
  }
  return Status::ResourceExhausted(
      "external join failed after retries (network partitioned?)");
}

bool ExternalJoinExecutor::ExecuteAttempt(const query::AnalyzedQuery& q,
                                          uint64_t epoch,
                                          ExecutionReport* report) {
  const ExecutorContext ctx(data_, q, epoch);
  // Tuples waiting at each node to be forwarded upward.
  std::vector<std::vector<data::Tuple>> pending(sim_.num_nodes());
  std::vector<data::Tuple> base_candidates;

  for (sim::NodeId u : tree_.collection_order()) {
    std::vector<data::Tuple> contribution = std::move(pending[u]);
    if (ctx.info(u).has_tuple) contribution.push_back(ctx.info(u).tuple);
    if (u == tree_.root()) {
      base_candidates = std::move(contribution);
      continue;
    }
    if (contribution.empty()) continue;

    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    bool corrupted = false;
    if (!sim_.SendUnicast(std::move(msg), &corrupted)) return false;
    if (corrupted) {
      // With the CRC trailer off, garbled tuples slip through the link
      // layer but are unusable: the subtree's rows are lost.
      ++report->corrupted_deliveries;
      continue;
    }
    std::vector<data::Tuple>& up = pending[tree_.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }

  report->candidate_tuples = base_candidates.size();
  report->result = ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));
  return true;
}

}  // namespace sensjoin::join
