#ifndef SENSJOIN_JOIN_CONTINUOUS_H_
#define SENSJOIN_JOIN_CONTINUOUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// Continuous-query variant of SENS-Join implementing the paper's stated
/// follow-on work (Sec. VIII: "we currently investigate if the filtering
/// can be optimized for continuous queries by exploiting temporal
/// correlations").
///
/// Idea: across SAMPLE PERIOD executions, most quantized join-attribute
/// tuples do not change (sensor drift is slow relative to the quantization
/// resolution). The Join-Attribute-Collection step therefore ships only
/// *deltas*: each node reports its key only when it moved to a different
/// cell (as a removal + addition pair); inner nodes merge and forward the
/// deltas and update their stored subtree structures incrementally. The
/// base station maintains the collected multiset, recomputes the filter and
/// disseminates it as in the snapshot protocol.
///
/// Treecut is disabled in this mode (proxies would have to re-ship stored
/// tuples every epoch anyway). A link failure invalidates the distributed
/// state; the executor rebuilds the tree and bootstraps from scratch, which
/// is exactly a full collection (every key is an addition).
class ContinuousSensJoinExecutor {
 public:
  ContinuousSensJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                             const data::NetworkData& data,
                             QuantizationConfig quantization,
                             ProtocolConfig config = ProtocolConfig{});

  /// Executes one period over snapshot `epoch`. The first call (and any
  /// call after a topology repair) bootstraps the distributed state.
  StatusOr<ExecutionReport> ExecuteEpoch(const query::AnalyzedQuery& q,
                                         uint64_t epoch);

  const net::RoutingTree& tree() const { return tree_; }
  bool bootstrapped() const { return bootstrapped_; }

 private:
  /// One attempt; *failed set on link failure (retry after tree rebuild).
  Status ExecuteAttempt(const query::AnalyzedQuery& q, uint64_t epoch,
                        ExecutionReport* report, bool* failed);

  void ResetDistributedState();

  sim::Simulator& sim_;
  net::RoutingTree tree_;
  const data::NetworkData& data_;
  QuantizationConfig quantization_;
  ProtocolConfig config_;

  // ---- Persistent distributed state (valid while bootstrapped_) ---------
  bool bootstrapped_ = false;
  std::unique_ptr<JoinAttrCodec> codec_;
  /// Last key each node reported (valid flag alongside).
  std::vector<uint64_t> last_key_;
  std::vector<char> last_valid_;
  /// Per inner node: multiset of keys reported by its descendants.
  std::vector<std::map<uint64_t, int>> subtree_counts_;
  /// Base station: multiset of all reported keys.
  std::map<uint64_t, int> base_counts_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_CONTINUOUS_H_
