#ifndef SENSJOIN_JOIN_CONTINUOUS_H_
#define SENSJOIN_JOIN_CONTINUOUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// Epoch-to-epoch delta execution engine for continuous SENS-Join: the
/// in-network half of the paper's stated follow-on work (Sec. VIII:
/// "we currently investigate if the filtering can be optimized for
/// continuous queries by exploiting temporal correlations").
///
/// Idea: across SAMPLE PERIOD executions, most quantized join-attribute
/// tuples do not change (sensor drift is slow relative to the quantization
/// resolution). The Join-Attribute-Collection step therefore ships only
/// *deltas*: each node reports its key only when it moved to a different
/// cell (as a removal + addition pair); inner nodes merge and forward the
/// deltas and update their stored subtree structures incrementally. The
/// base station maintains the collected multiset and reports the set-level
/// changes, so the caller can maintain its join filter incrementally too
/// (IncrementalJoinFilter in join_filter.h).
///
/// The engine is query-agnostic beyond the collection semantics: one
/// instance serves a whole *sharing group* of queries with identical
/// (relations, selections, join attributes) signatures — the service layer
/// (service/join_service.h) disseminates the union of the group's filters
/// through DisseminateAndFinalize and splits the resulting candidates per
/// query at the station.
///
/// Treecut (config.use_treecut): the boundary is computed during the
/// bootstrap epoch exactly as in the snapshot protocol; it is then frozen.
/// An exited node re-ships its complete tuple to its proxy (first
/// non-exited ancestor) whenever the tuple's content changed, and the
/// proxy translates stored-tuple changes into key deltas, so the base
/// multiset stays exact. Exited subtrees are skipped by the filter
/// dissemination; the proxy ships stored tuples that match the filter in
/// the final phase. Steady-state treecut is usually a net loss (readings
/// drift every epoch, so stored tuples are re-shipped every epoch) — the
/// abl_continuous --treecut ablation quantifies this.
///
/// Fault handling: a lost or corrupted delta hop is re-pulled by the
/// receiver (kControl re-request + re-send, bounded by
/// config.max_recovery_requests; counted as a re-sync). A permanent
/// failure marks the outcome failed; the caller must rebuild the tree,
/// Reset() the engine and re-run the epoch, which bootstraps from scratch
/// (a full collection: every key is an addition). A filter computed from
/// the maintained multiset is therefore never silently stale.
class DeltaGroupExecutor {
 public:
  DeltaGroupExecutor(sim::Simulator& sim, const data::NetworkData& data,
                     QuantizationConfig quantization, ProtocolConfig config);

  /// Outcome of one epoch's delta collection.
  struct CollectOutcome {
    /// A hop failed permanently; distributed state is invalid. Rebuild the
    /// tree, Reset() and retry.
    bool failed = false;
    /// This epoch ran as a full collection (first call or after Reset).
    bool bootstrap = false;
    size_t changed_nodes = 0;  ///< nodes whose reported key moved
    size_t resyncs = 0;        ///< lost/corrupted delta hops re-pulled
    size_t treecut_exited = 0;  ///< exited nodes (fixed at bootstrap)
    /// Set-level delta of the base station's collected key set this epoch:
    /// keys whose multiset count rose from zero / fell to zero.
    std::vector<uint64_t> added;
    std::vector<uint64_t> removed;
  };

  /// Senses `epoch` and runs the delta Join-Attribute-Collection over
  /// `tree`. The tree reference must stay valid until the matching
  /// DisseminateAndFinalize call. `q` defines membership, selections and
  /// join attributes; for a sharing group pass the representative query
  /// (all members agree on these by signature).
  Status Collect(const net::RoutingTree& tree, const query::AnalyzedQuery& q,
                 uint64_t epoch, CollectOutcome* out);

  /// Outcome of dissemination + final-result collection.
  struct FinalOutcome {
    bool failed = false;
    size_t final_tuples_shipped = 0;
    size_t resyncs = 0;  ///< lost/corrupted final hops re-pulled
    /// Complete tuples available at the base station for the exact join.
    std::vector<data::Tuple> candidates;
  };

  /// Disseminates `filter` (for a sharing group: the union of the members'
  /// filters) with Selective Filter Forwarding over the maintained subtree
  /// structures, then collects the matching complete tuples. Must follow a
  /// successful Collect of the same epoch.
  Status DisseminateAndFinalize(const PointSet& filter, FinalOutcome* out);

  /// Set view of the maintained base-station multiset.
  PointSet CollectedSet() const;

  /// Valid after the first successful Collect (until Reset).
  const JoinAttrCodec* codec() const { return codec_.get(); }
  /// Epoch context of the last Collect (senses; valid until the next
  /// Collect or Reset).
  const ExecutorContext* context() const {
    return ctx_.has_value() ? &*ctx_ : nullptr;
  }
  bool bootstrapped() const { return bootstrapped_; }

  /// Drops all distributed state; the next Collect bootstraps.
  void Reset();

 private:
  /// Delivers `msg` with bounded receiver-side re-pull on loss/corruption;
  /// increments *resyncs per re-pull. False = permanent failure.
  bool SendWithResync(sim::Message msg, size_t* resyncs);

  sim::Simulator& sim_;
  const data::NetworkData& data_;
  QuantizationConfig quantization_;
  ProtocolConfig config_;

  // ---- Epoch-scoped state (set by Collect) ------------------------------
  const net::RoutingTree* tree_ = nullptr;
  std::optional<ExecutorContext> ctx_;
  std::vector<uint64_t> new_key_;
  std::vector<char> new_valid_;

  // ---- Persistent distributed state (valid while bootstrapped_) ---------
  bool bootstrapped_ = false;
  std::unique_ptr<JoinAttrCodec> codec_;
  /// Last key each node reported (valid flag alongside).
  std::vector<uint64_t> last_key_;
  std::vector<char> last_valid_;
  /// Per inner node: multiset of keys reported by its descendants.
  std::vector<std::map<uint64_t, int>> subtree_counts_;
  /// Base station: multiset of all reported keys.
  std::map<uint64_t, int> base_counts_;

  // ---- Treecut state (config_.use_treecut; fixed at bootstrap) ----------
  std::vector<char> exited_;
  /// Proxy of each exited owner once its tuple first arrived somewhere
  /// (kInvalidNode before that).
  std::vector<sim::NodeId> proxy_of_;
  /// Owners whose complete tuple is stored at this (proxy) node.
  std::vector<std::vector<sim::NodeId>> proxied_at_;
  /// Last tuple content each exited owner shipped (tracks the proxy's
  /// store; nullopt = no tuple / tombstoned).
  std::vector<std::optional<data::Tuple>> stored_tuple_;
};

/// Continuous-query variant of SENS-Join: single-query wrapper around
/// DeltaGroupExecutor with incremental filter maintenance at the base
/// station. The first ExecuteEpoch call (and any call after a topology
/// repair) bootstraps the distributed state, which is exactly a full
/// collection.
class ContinuousSensJoinExecutor {
 public:
  ContinuousSensJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                             const data::NetworkData& data,
                             QuantizationConfig quantization,
                             ProtocolConfig config = ProtocolConfig{});

  /// Executes one period over snapshot `epoch`.
  StatusOr<ExecutionReport> ExecuteEpoch(const query::AnalyzedQuery& q,
                                         uint64_t epoch);

  const net::RoutingTree& tree() const { return tree_; }
  bool bootstrapped() const { return engine_.bootstrapped(); }

 private:
  sim::Simulator& sim_;
  net::RoutingTree tree_;
  ProtocolConfig config_;
  DeltaGroupExecutor engine_;
  IncrementalJoinFilter filter_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_CONTINUOUS_H_
