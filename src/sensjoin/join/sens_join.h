#ifndef SENSJOIN_JOIN_SENS_JOIN_H_
#define SENSJOIN_JOIN_SENS_JOIN_H_

#include <cstdint>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/delivery_guard.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// SENS-Join (Sec. IV): the energy-efficient general-purpose join. An
/// execution runs three tree phases:
///
///  1a. Join-Attribute-Collection with Treecut: leaves ship complete tuples
///      while the volume stays below Dmax; the first node over the
///      threshold stores them as a proxy and switches to the compact
///      join-attribute structure (Fig. 2).
///  1b. Filter-Dissemination with Selective Filter Forwarding: the base
///      station joins the quantized join-attribute tuples conservatively,
///      and the resulting filter is pruned against each node's stored
///      subtree structure on the way down (Fig. 3).
///   2. Final-Result-Computation: only nodes (and proxies) whose
///      join-attribute tuple is in the filter ship complete tuples; the
///      base station computes the exact result.
///
/// Failure handling escalates in order (each stage opt-in via
/// ProtocolConfig, all off by default):
///
///  1. Phase-level recovery: a transient hop failure (packet loss beyond
///     the ARQ budget) re-requests the missing subtree contribution over
///     the same hop, using the stored per-child filter state during
///     Filter-Dissemination.
///  2. Phase watchdog: each phase gets a sim-time deadline scaled by tree
///     depth; once overrun, the executor stops repairing and degrades.
///  3. In-network tree repair (net::TreeMaintenance): an orphaned subtree
///     re-attaches to the best live neighbor and its buffered upward state
///     is re-routed through the new parent — except during
///     Filter-Dissemination, where a locally-pruned filter cannot be
///     soundly widened for a new path (the branch degrades instead).
///  4. Graceful degradation: the loss is certified in
///     ExecutionReport::certificate (exactly which nodes' data is missing)
///     and the execution finishes over the reachable field.
///
/// With everything off, persistent failures (crashes, downed links) abort
/// the attempt; the tree is rebuilt (CTP repair) and the query re-executed,
/// as Sec. IV-F prescribes.
class SensJoinExecutor {
 public:
  /// `sim` and `data` must outlive the executor. `quantization` supplies
  /// the per-attribute ranges/resolutions fixed for the environment.
  SensJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                   const data::NetworkData& data,
                   QuantizationConfig quantization,
                   ProtocolConfig config = ProtocolConfig{});

  /// Runs the query once over snapshot `epoch`.
  StatusOr<ExecutionReport> Execute(const query::AnalyzedQuery& q,
                                    uint64_t epoch);

  const net::RoutingTree& tree() const { return tree_; }
  const ProtocolConfig& config() const { return config_; }

 private:
  /// One attempt. Returns kFailedPrecondition-free Status: OK with
  /// *failed=false on success, OK with *failed=true on a link failure
  /// (retryable), or a real error (bad quantization config etc.). `guard`
  /// stamps every unicast of the attempt and classifies its deliveries
  /// (exactly-once semantics; see delivery_guard.h).
  Status ExecuteAttempt(const query::AnalyzedQuery& q, uint64_t epoch,
                        DeliveryGuard* guard, ExecutionReport* report,
                        bool* failed);

  sim::Simulator& sim_;
  net::RoutingTree tree_;
  const data::NetworkData& data_;
  QuantizationConfig quantization_;
  ProtocolConfig config_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_SENS_JOIN_H_
