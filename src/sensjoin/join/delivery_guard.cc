#include "sensjoin/join/delivery_guard.h"

#include <algorithm>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {

const char* DeliveryVerdictName(DeliveryVerdict verdict) {
  switch (verdict) {
    case DeliveryVerdict::kFirstDelivery:
      return "first_delivery";
    case DeliveryVerdict::kReordered:
      return "reordered";
    case DeliveryVerdict::kDuplicate:
      return "duplicate";
    case DeliveryVerdict::kStale:
      return "stale";
    case DeliveryVerdict::kUntagged:
      return "untagged";
    case DeliveryVerdict::kPhantom:
      return "phantom";
  }
  return "unknown";
}

DeliveryGuard::DeliveryGuard(int dedup_window, int tag_wire_bytes,
                             int num_nodes)
    : dedup_window_(std::max(1, dedup_window)),
      tag_wire_bytes_(std::max(0, tag_wire_bytes)),
      by_src_(static_cast<size_t>(std::max(0, num_nodes))) {}

void DeliveryGuard::BeginAttempt(uint32_t attempt_id) {
  attempt_id_ = attempt_id;
  // Shards are retained (only cleared) so a pre-sized table never
  // reallocates mid-attempt under concurrent stamping.
  for (auto& shard : by_src_) shard.clear();
}

DeliveryGuard::LinkState& DeliveryGuard::LinkFor(sim::NodeId src,
                                                 sim::NodeId dst) {
  const auto s = static_cast<size_t>(src);
  if (s >= by_src_.size()) by_src_.resize(s + 1);
  return by_src_[s][dst];
}

DeliveryGuard::LinkState* DeliveryGuard::FindLink(sim::NodeId src,
                                                  sim::NodeId dst) {
  const auto s = static_cast<size_t>(src);
  if (s >= by_src_.size()) return nullptr;
  auto it = by_src_[s].find(dst);
  return it == by_src_[s].end() ? nullptr : &it->second;
}

void DeliveryGuard::Stamp(sim::Message& msg) {
  SENSJOIN_CHECK(msg.dst != sim::kInvalidNode)
      << "only unicasts carry delivery tags";
  LinkState& link = LinkFor(msg.src, msg.dst);
  msg.tag.attempt_id = attempt_id_;
  msg.tag.seq = link.next_seq++;
  link.window.push_back(Entry{msg.tag.seq, false});
  while (link.window.size() > static_cast<size_t>(dedup_window_)) {
    link.window.pop_front();
  }
  msg.payload_bytes += static_cast<size_t>(tag_wire_bytes_);
}

void DeliveryGuard::Retract(const sim::Message& msg) {
  if (!msg.tag.tagged() || msg.tag.attempt_id != attempt_id_) return;
  LinkState* state = FindLink(msg.src, msg.dst);
  if (state == nullptr) return;
  std::deque<Entry>& window = state->window;
  for (auto e = window.begin(); e != window.end(); ++e) {
    if (e->seq == msg.tag.seq) {
      window.erase(e);
      return;
    }
  }
}

DeliveryVerdict DeliveryGuard::Classify(sim::NodeId receiver,
                                        const sim::Message& msg) {
  // Broadcast deliveries (msg.dst stays kInvalidNode) and untagged traffic
  // are outside the exactly-once contract: floods suppress duplicates by
  // their own state, beacons and repair requests are idempotent by
  // construction.
  if (msg.dst != receiver || !msg.tag.tagged()) {
    return DeliveryVerdict::kUntagged;
  }
  if (msg.tag.attempt_id != attempt_id_) {
    // Cross-attempt replays and other stragglers of aborted attempts. A
    // *newer* attempt id cannot occur (the guard is bumped before any send
    // of the new attempt), but is treated the same defensively.
    ++stale_drops_;
    return DeliveryVerdict::kStale;
  }
  LinkState* link = FindLink(msg.src, msg.dst);
  Entry* entry = nullptr;
  bool earlier_outstanding = false;
  if (link != nullptr) {
    for (Entry& e : link->window) {
      if (e.seq == msg.tag.seq) {
        entry = &e;
        break;
      }
      if (e.seq < msg.tag.seq && !e.delivered) earlier_outstanding = true;
    }
  }
  if (entry == nullptr) {
    if (link != nullptr && msg.tag.seq < link->next_seq) {
      // Stamped once, but evicted from the window (or retracted): the
      // conservative idempotent answer is to drop it as a duplicate.
      ++duplicates_;
      return DeliveryVerdict::kDuplicate;
    }
    // A current-attempt tag that was never issued on this link: the medium
    // duplicates and delays, but never fabricates. Callers treat a nonzero
    // phantom count as a protocol bug.
    ++phantoms_;
    return DeliveryVerdict::kPhantom;
  }
  if (entry->delivered) {
    ++duplicates_;
    return DeliveryVerdict::kDuplicate;
  }
  entry->delivered = true;
  if (earlier_outstanding) {
    // This arrival overtook an earlier stamped-but-undelivered sequence on
    // the same link (delay jitter): buffer it logically — the phase's
    // contribution state is keyed by sender, so holding it until the gap
    // resolves is a no-op re-ordering, counted for observability.
    ++reordered_;
    return DeliveryVerdict::kReordered;
  }
  return DeliveryVerdict::kFirstDelivery;
}

}  // namespace sensjoin::join
