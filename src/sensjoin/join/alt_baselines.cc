#include "sensjoin/join/alt_baselines.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"
#include "sensjoin/net/flooding.h"
#include "sensjoin/query/expr_eval.h"

namespace sensjoin::join {
namespace {

/// Wire size of one result row: two bytes per output column (matching the
/// per-attribute assumption used everywhere else).
int ResultRowBytes(const query::AnalyzedQuery& q) {
  if (q.select_star()) {
    return 2 * q.num_tables() * q.schema().num_attributes();
  }
  return 2 * static_cast<int>(q.select().size());
}

}  // namespace

SemiJoinExecutor::SemiJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                                   const data::NetworkData& data,
                                   ProtocolConfig config)
    : sim_(sim), tree_(std::move(tree)), data_(data), config_(config) {}

StatusOr<ExecutionReport> SemiJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  if (q.num_tables() != 2) {
    return Status::Unimplemented(
        "the semi-join baseline supports exactly two relations");
  }
  const ExecutorContext ctx(data_, q, epoch);
  ExecutionReport report;
  const StatsSnapshot snapshot(sim_);
  const double start_time = sim_.now();

  const std::vector<int>& a_attrs = q.table(0).join_attr_indices;
  const int a_attr_bytes = q.JoinAttrTupleBytes(0);

  // ---- Phase 1: collect relation A's join-attribute tuples at the base.
  std::vector<std::vector<const data::Tuple*>> pending(sim_.num_nodes());
  std::vector<const data::Tuple*> a_values;
  for (sim::NodeId u : tree_.collection_order()) {
    std::vector<const data::Tuple*> contribution = std::move(pending[u]);
    if (ctx.info(u).has_tuple && ctx.PassesTable(ctx.info(u).tuple, 0)) {
      contribution.push_back(&ctx.info(u).tuple);
    }
    if (u == tree_.root()) {
      a_values = std::move(contribution);
      continue;
    }
    if (contribution.empty()) continue;
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = contribution.size() * a_attr_bytes;
    if (!sim_.SendUnicast(std::move(msg))) {
      return Status::ResourceExhausted("semi-join: link failure");
    }
    std::vector<const data::Tuple*>& up = pending[tree_.parent(u)];
    up.insert(up.end(), contribution.begin(), contribution.end());
  }
  sim_.events().Run();
  report.collected_points = a_values.size();

  // ---- Phase 2: broadcast A's join-attribute values over the network
  // (with arbitrary placements, relation B's nodes are everywhere).
  net::FloodPayload(sim_, tree_.root(), a_values.size() * a_attr_bytes,
                    sim::MessageKind::kFilter);

  // ---- Phase 3: B nodes with a partner ship complete tuples; A nodes
  // ship theirs unconditionally (the base needs them to build the result).
  // A-side stand-in tuples carry only the join attributes.
  std::vector<data::Tuple> a_projections;
  a_projections.reserve(a_values.size());
  for (const data::Tuple* a : a_values) {
    data::Tuple proj;
    proj.node = a->node;
    proj.values.assign(q.schema().num_attributes(), 0.0);
    for (int idx : a_attrs) proj.values[idx] = a->values[idx];
    a_projections.push_back(std::move(proj));
  }
  auto b_has_partner = [&](const data::Tuple& b) {
    for (const data::Tuple& a : a_projections) {
      std::vector<const data::Tuple*> pair = {&a, &b};
      query::TupleContext pair_ctx(pair);
      bool match = true;
      for (const auto& p : q.join_predicates()) {
        if (!query::EvalPredicate(*p, pair_ctx)) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  };

  std::vector<std::vector<data::Tuple>> pending_full(sim_.num_nodes());
  std::vector<data::Tuple> base_candidates;
  for (sim::NodeId u : tree_.collection_order()) {
    std::vector<data::Tuple> contribution = std::move(pending_full[u]);
    const ExecutorContext::NodeInfo& info = ctx.info(u);
    if (info.has_tuple) {
      const bool as_a = ctx.PassesTable(info.tuple, 0);
      const bool as_b =
          ctx.PassesTable(info.tuple, 1) && b_has_partner(info.tuple);
      if (as_a || as_b) {
        contribution.push_back(info.tuple);
        ++report.final_tuples_shipped;
      }
    }
    if (u == tree_.root()) {
      base_candidates = std::move(contribution);
      continue;
    }
    if (contribution.empty()) continue;
    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    if (!sim_.SendUnicast(std::move(msg))) {
      return Status::ResourceExhausted("semi-join: link failure");
    }
    std::vector<data::Tuple>& up = pending_full[tree_.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }
  sim_.events().Run();

  report.candidate_tuples = base_candidates.size();
  report.result = ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));
  report.success = true;
  report.cost = snapshot.DeltaTo(sim_);
  report.response_time_s = sim_.now() - start_time;
  return report;
}

MediatedJoinExecutor::MediatedJoinExecutor(sim::Simulator& sim,
                                           net::RoutingTree tree,
                                           const data::NetworkData& data,
                                           ProtocolConfig config)
    : sim_(sim), tree_(std::move(tree)), data_(data), config_(config) {}

StatusOr<ExecutionReport> MediatedJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  const ExecutorContext ctx(data_, q, epoch);
  ExecutionReport report;
  const StatsSnapshot snapshot(sim_);
  const double start_time = sim_.now();

  // ---- Pick the mediator: the participant nearest the centroid of the
  // contributing nodes (the "join location").
  double cx = 0, cy = 0;
  int participants = 0;
  for (int u = 0; u < ctx.num_nodes(); ++u) {
    if (!ctx.info(u).has_tuple || !tree_.InTree(u)) continue;
    cx += data_.position(u).x;
    cy += data_.position(u).y;
    ++participants;
  }
  if (participants == 0) {
    report.success = true;
    report.result = ComputeExactJoin(q, ctx.PerTableCandidates({}));
    report.cost = snapshot.DeltaTo(sim_);
    return report;
  }
  cx /= participants;
  cy /= participants;
  sim::NodeId mediator = sim::kInvalidNode;
  double best = std::numeric_limits<double>::max();
  for (int u = 0; u < ctx.num_nodes(); ++u) {
    if (!ctx.info(u).has_tuple || !tree_.InTree(u)) continue;
    const double d = Distance(data_.position(u), Point{cx, cy});
    if (d < best) {
      best = d;
      mediator = u;
    }
  }
  last_mediator_ = mediator;

  // ---- Phase 1: route every participating tuple to the mediator along a
  // collection tree rooted there (operator-placement infrastructure costs
  // are accounted as kBeacon, like all routing maintenance).
  const net::RoutingTree to_mediator = net::RoutingTree::Build(sim_, mediator);
  std::vector<std::vector<data::Tuple>> pending(sim_.num_nodes());
  std::vector<data::Tuple> at_mediator;
  for (sim::NodeId u : to_mediator.collection_order()) {
    std::vector<data::Tuple> contribution = std::move(pending[u]);
    if (ctx.info(u).has_tuple) contribution.push_back(ctx.info(u).tuple);
    if (u == mediator) {
      at_mediator = std::move(contribution);
      continue;
    }
    if (contribution.empty()) continue;
    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = to_mediator.parent(u);
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = payload;
    if (!sim_.SendUnicast(std::move(msg))) {
      return Status::ResourceExhausted("mediated join: link failure");
    }
    std::vector<data::Tuple>& up = pending[to_mediator.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }
  sim_.events().Run();
  report.candidate_tuples = at_mediator.size();

  // ---- The mediator computes the join ...
  report.result = ComputeExactJoin(q, ctx.PerTableCandidates(at_mediator));

  // ---- ... and ships the result rows to the base station hop by hop.
  const size_t result_bytes =
      report.result.rows.size() * static_cast<size_t>(ResultRowBytes(q));
  sim::NodeId hop = mediator;
  while (hop != tree_.root()) {
    const sim::NodeId parent = tree_.parent(hop);
    SENSJOIN_CHECK(parent != sim::kInvalidNode);
    sim::Message msg;
    msg.src = hop;
    msg.dst = parent;
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = result_bytes;
    if (!sim_.SendUnicast(std::move(msg))) {
      return Status::ResourceExhausted("mediated join: link failure");
    }
    hop = parent;
  }
  sim_.events().Run();

  report.success = true;
  report.cost = snapshot.DeltaTo(sim_);
  report.response_time_s = sim_.now() - start_time;
  return report;
}

}  // namespace sensjoin::join
