#ifndef SENSJOIN_JOIN_EXTERNAL_JOIN_H_
#define SENSJOIN_JOIN_EXTERNAL_JOIN_H_

#include <cstdint>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/delivery_guard.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::join {

/// The state-of-the-art general-purpose baseline (Sec. I, VI): every node
/// ships its (projected, selection-filtered) tuple to the base station
/// along the routing tree, tuples are aggregated into packets as they move
/// up, and the base station computes the join. Optimal when selectivity is
/// very low; wasteful otherwise.
class ExternalJoinExecutor {
 public:
  /// `sim`, `data` and the initial `tree` must outlive the executor. The
  /// executor rebuilds the tree (CTP repair) and retries after link
  /// failures, up to `config.max_retries`.
  ExternalJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                       const data::NetworkData& data,
                       ProtocolConfig config = ProtocolConfig{});

  /// Runs the query once over snapshot `epoch`. Returns an error if the
  /// query cannot be executed (no reachable nodes, repeated failures).
  StatusOr<ExecutionReport> Execute(const query::AnalyzedQuery& q,
                                    uint64_t epoch);

  const net::RoutingTree& tree() const { return tree_; }

 private:
  /// One attempt; returns false on a link failure mid-execution. `guard`
  /// stamps every unicast and classifies its deliveries (exactly-once
  /// semantics; see delivery_guard.h).
  bool ExecuteAttempt(const query::AnalyzedQuery& q, uint64_t epoch,
                      DeliveryGuard* guard, ExecutionReport* report);

  sim::Simulator& sim_;
  net::RoutingTree tree_;
  const data::NetworkData& data_;
  ProtocolConfig config_;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_EXTERNAL_JOIN_H_
