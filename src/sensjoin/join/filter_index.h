#ifndef SENSJOIN_JOIN_FILTER_INDEX_H_
#define SENSJOIN_JOIN_FILTER_INDEX_H_

#include <vector>

#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/query/compiled_predicate.h"
#include "sensjoin/query/constraint.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {

/// The indexed execution plan for the base station's pre-computation join:
/// a table probing order plus, per nesting level, the residual predicates to
/// evaluate and the compiled probe constraints that restrict that level's
/// candidates to a contiguous range of a sorted per-dimension key index.
///
/// Ordering heuristic (estimated selectivity proxy): the first table is the
/// one referenced by the most join predicates — placing it early unlocks
/// constraints against its neighbors — and each following slot greedily
/// takes the table with the most extractable probe constraints against the
/// tables already placed, so every level after the first is probed through
/// an index whenever the predicates allow it. Reordering is free: a full
/// assignment matches iff every predicate is non-false, independent of the
/// nesting order, so the result is identical to the naive left-to-right DFS.
///
/// Holds borrowed pointers into the query's predicate trees; the plan must
/// not outlive the AnalyzedQuery.
class FilterJoinPlan {
 public:
  FilterJoinPlan(const query::AnalyzedQuery& q, const JoinAttrCodec& codec);

  /// One probe constraint mapped onto a quantizer dimension.
  struct Probe {
    query::ProbeConstraint constraint;
    int dim;  ///< quantizer dimension index of the constrained attribute
  };

  /// One nesting level of the indexed DFS.
  struct Level {
    int table;  ///< original FROM index assigned at this level
    /// Predicates whose last referenced table (in probing order) is this
    /// level's; each is evaluated on every surviving candidate.
    std::vector<const query::Expr*> preds;
    std::vector<query::CompiledPredicate> compiled;  ///< parallel to preds
    std::vector<Probe> probes;
  };

  const std::vector<Level>& levels() const { return levels_; }

  /// True if at least one level can be probed through an index; when false,
  /// the indexed path degenerates to the exhaustive DFS and the caller
  /// should prefer the naive engine.
  bool has_probes() const { return num_constraints_ > 0; }
  int num_constraints() const { return num_constraints_; }

 private:
  std::vector<Level> levels_;
  int num_constraints_ = 0;
};

/// Indexed variant of ComputeJoinFilter: probes sorted per-dimension key
/// indexes instead of enumerating all combinations. Produces a bit-identical
/// filter and combinations_matched count to the naive engine (constraints
/// are conservative supersets and every candidate is re-evaluated against
/// the full predicates); combinations_evaluated is typically much smaller.
FilterJoinResult ComputeJoinFilterIndexed(const query::AnalyzedQuery& q,
                                          const JoinAttrCodec& codec,
                                          const PointSet& collected,
                                          const FilterJoinPlan& plan);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_FILTER_INDEX_H_
