#include "sensjoin/join/join_attr_codec.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {

JoinAttrCodec::JoinAttrCodec(Quantizer quantizer, int flag_bits)
    : quantizer_(std::move(quantizer)),
      zorder_(quantizer_.bits_per_dims()),
      flag_bits_(flag_bits),
      layout_(std::make_shared<const PointSetLayout>(flag_bits,
                                                     zorder_.level_widths())) {
}

uint64_t JoinAttrCodec::EncodeTuple(const std::vector<double>& values,
                                    uint8_t flags) const {
  SENSJOIN_DCHECK(static_cast<int>(values.size()) == quantizer_.num_dims());
  SENSJOIN_DCHECK(flag_bits_ == 0 || flags != 0);
  std::vector<uint32_t> coords(values.size());
  for (int i = 0; i < quantizer_.num_dims(); ++i) {
    coords[i] = quantizer_.Coordinate(i, values[i]);
  }
  return layout_->MakeKey(flags, zorder_.Interleave(coords));
}

std::vector<uint32_t> JoinAttrCodec::KeyCoordinates(uint64_t key) const {
  return zorder_.Deinterleave(layout_->ZOfKey(key));
}

std::vector<query::Interval> JoinAttrCodec::KeyIntervals(uint64_t key) const {
  const std::vector<uint32_t> coords = KeyCoordinates(key);
  std::vector<query::Interval> out(coords.size());
  for (int i = 0; i < quantizer_.num_dims(); ++i) {
    out[i] = quantizer_.CellInterval(i, coords[i]);
  }
  return out;
}

std::vector<double> JoinAttrCodec::KeyCenters(uint64_t key) const {
  const std::vector<uint32_t> coords = KeyCoordinates(key);
  std::vector<double> out(coords.size());
  for (int i = 0; i < quantizer_.num_dims(); ++i) {
    out[i] = quantizer_.CellCenter(i, coords[i]);
  }
  return out;
}

}  // namespace sensjoin::join
