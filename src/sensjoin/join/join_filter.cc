#include "sensjoin/join/join_filter.h"

#include <algorithm>
#include <functional>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/filter_index.h"
#include "sensjoin/query/interval_eval.h"

namespace sensjoin::join {
namespace {

/// IntervalContext over an in-progress table->row assignment.
class AssignmentContext : public query::IntervalContext {
 public:
  explicit AssignmentContext(
      const std::vector<const std::vector<query::Interval>*>* assignment)
      : assignment_(assignment) {}

  query::Interval Value(int table_index, int attr_index) const override {
    const std::vector<query::Interval>* row = (*assignment_)[table_index];
    SENSJOIN_DCHECK(row != nullptr);
    return (*row)[attr_index];
  }

 private:
  const std::vector<const std::vector<query::Interval>*>* assignment_;
};

/// Exhaustive reference engine: nested-loop DFS over all eligible key
/// combinations.
FilterJoinResult ComputeJoinFilterNaive(const query::AnalyzedQuery& q,
                                        const JoinAttrCodec& codec,
                                        const PointSet& collected);

}  // namespace

std::vector<int> TableRelationBits(const query::AnalyzedQuery& q) {
  const std::vector<std::string> names = q.RelationNames();
  std::vector<int> bits(q.num_tables(), -1);
  for (int t = 0; t < q.num_tables(); ++t) {
    for (size_t r = 0; r < names.size(); ++r) {
      if (names[r] == q.table(t).relation) {
        bits[t] = static_cast<int>(r);
        break;
      }
    }
    SENSJOIN_CHECK_GE(bits[t], 0);
  }
  return bits;
}

FilterJoinResult ComputeJoinFilter(const query::AnalyzedQuery& q,
                                   const JoinAttrCodec& codec,
                                   const PointSet& collected,
                                   FilterJoinStrategy strategy) {
  if (strategy != FilterJoinStrategy::kNaive) {
    const FilterJoinPlan plan(q, codec);
    if (plan.has_probes() || strategy == FilterJoinStrategy::kIndexed) {
      return ComputeJoinFilterIndexed(q, codec, collected, plan);
    }
    // kAuto with no extractable constraints: the indexed engine would only
    // replay the exhaustive DFS with extra bookkeeping.
  }
  return ComputeJoinFilterNaive(q, codec, collected);
}

namespace {

/// Interval row per collected key, indexed by schema attribute index (only
/// the quantizer's dimensions are meaningful; join predicates reference
/// only those).
std::vector<std::vector<query::Interval>> BuildIntervalRows(
    const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
    const std::vector<uint64_t>& keys) {
  const Quantizer& quant = codec.quantizer();
  std::vector<std::vector<query::Interval>> rows(
      keys.size(),
      std::vector<query::Interval>(q.schema().num_attributes()));
  for (size_t k = 0; k < keys.size(); ++k) {
    const std::vector<query::Interval> cell = codec.KeyIntervals(keys[k]);
    for (int d = 0; d < quant.num_dims(); ++d) {
      rows[k][quant.dim(d).attr_index] = cell[d];
    }
  }
  return rows;
}

/// Eligibility: key usable for table t iff its flags contain t's relation.
std::vector<std::vector<size_t>> BuildEligibility(
    const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
    const std::vector<uint64_t>& keys) {
  const std::vector<int> rel_bits = TableRelationBits(q);
  std::vector<std::vector<size_t>> eligible(q.num_tables());
  for (size_t k = 0; k < keys.size(); ++k) {
    const uint8_t flags = codec.KeyFlags(keys[k]);
    for (int t = 0; t < q.num_tables(); ++t) {
      if (codec.flag_bits() == 0 || ((flags >> rel_bits[t]) & 1)) {
        eligible[t].push_back(k);
      }
    }
  }
  return eligible;
}

/// Evaluate each join predicate as soon as its last referenced table is
/// assigned.
std::vector<std::vector<const query::Expr*>> BuildPredsAt(
    const query::AnalyzedQuery& q) {
  std::vector<std::vector<const query::Expr*>> preds_at(q.num_tables());
  for (const auto& p : q.join_predicates()) {
    std::set<int> tables;
    p->CollectTableIndices(&tables);
    SENSJOIN_CHECK(!tables.empty());
    preds_at[*tables.rbegin()].push_back(p.get());
  }
  return preds_at;
}

FilterJoinResult ComputeJoinFilterNaive(const query::AnalyzedQuery& q,
                                        const JoinAttrCodec& codec,
                                        const PointSet& collected) {
  const std::vector<uint64_t>& keys = collected.keys();
  const int num_tables = q.num_tables();
  const auto rows = BuildIntervalRows(q, codec, keys);
  const auto eligible = BuildEligibility(q, codec, keys);
  const auto preds_at = BuildPredsAt(q);

  FilterJoinResult result(codec.EmptySet());
  std::vector<char> matched(keys.size(), 0);
  std::vector<const std::vector<query::Interval>*> assignment(num_tables,
                                                              nullptr);
  std::vector<size_t> assigned_key(num_tables, 0);
  AssignmentContext ctx(&assignment);

  std::function<void(int)> dfs = [&](int t) {
    if (t == num_tables) {
      ++result.combinations_matched;
      for (int i = 0; i < num_tables; ++i) matched[assigned_key[i]] = 1;
      return;
    }
    for (size_t k : eligible[t]) {
      assignment[t] = &rows[k];
      assigned_key[t] = k;
      bool alive = true;
      for (const query::Expr* p : preds_at[t]) {
        ++result.combinations_evaluated;
        if (query::EvalTri(*p, ctx) == query::Tri::kFalse) {
          alive = false;
          break;
        }
      }
      if (alive) dfs(t + 1);
    }
    assignment[t] = nullptr;
  };
  dfs(0);

  std::vector<uint64_t> filter_keys;
  for (size_t k = 0; k < keys.size(); ++k) {
    if (matched[k]) filter_keys.push_back(keys[k]);
  }
  result.filter = PointSet::FromKeys(codec.layout(), std::move(filter_keys));
  return result;
}

}  // namespace

FilterJoinResult ComputeJoinFilterDelta(const query::AnalyzedQuery& q,
                                        const JoinAttrCodec& codec,
                                        const PointSet& collected,
                                        const PointSet& previous,
                                        const std::vector<uint64_t>& added) {
  const std::vector<uint64_t>& keys = collected.keys();
  const int num_tables = q.num_tables();
  const auto rows = BuildIntervalRows(q, codec, keys);
  const auto all = BuildEligibility(q, codec, keys);
  const auto preds_at = BuildPredsAt(q);

  std::vector<char> is_added(keys.size(), 0);
  for (uint64_t key : added) {
    const auto it = std::lower_bound(keys.begin(), keys.end(), key);
    SENSJOIN_CHECK(it != keys.end() && *it == key)
        << "added key missing from the collected set";
    is_added[static_cast<size_t>(it - keys.begin())] = 1;
  }
  std::vector<std::vector<size_t>> added_only(num_tables);
  std::vector<std::vector<size_t>> old_only(num_tables);
  for (int t = 0; t < num_tables; ++t) {
    for (size_t k : all[t]) {
      (is_added[k] ? added_only[t] : old_only[t]).push_back(k);
    }
  }

  FilterJoinResult result(codec.EmptySet());
  std::vector<char> matched(keys.size(), 0);
  std::vector<const std::vector<query::Interval>*> assignment(num_tables,
                                                              nullptr);
  std::vector<size_t> assigned_key(num_tables, 0);
  AssignmentContext ctx(&assignment);

  // Enumerate exactly the combinations touching >= 1 added key, partitioned
  // by the first added position (pivot): positions before the pivot draw
  // from old keys only, the pivot from added keys, later positions from
  // all keys. All-old combinations were settled by the previous epoch.
  int pivot = 0;
  std::function<void(int)> dfs = [&](int t) {
    if (t == num_tables) {
      ++result.combinations_matched;
      for (int i = 0; i < num_tables; ++i) matched[assigned_key[i]] = 1;
      return;
    }
    const std::vector<size_t>& pool =
        t < pivot ? old_only[t] : (t == pivot ? added_only[t] : all[t]);
    for (size_t k : pool) {
      assignment[t] = &rows[k];
      assigned_key[t] = k;
      bool alive = true;
      for (const query::Expr* p : preds_at[t]) {
        ++result.combinations_evaluated;
        if (query::EvalTri(*p, ctx) == query::Tri::kFalse) {
          alive = false;
          break;
        }
      }
      if (alive) dfs(t + 1);
    }
    assignment[t] = nullptr;
  };
  for (pivot = 0; pivot < num_tables; ++pivot) dfs(0);

  std::vector<uint64_t> filter_keys = previous.keys();
  for (size_t k = 0; k < keys.size(); ++k) {
    if (matched[k]) filter_keys.push_back(keys[k]);
  }
  result.filter = PointSet::FromKeys(codec.layout(), std::move(filter_keys));
  return result;
}

const FilterJoinResult& IncrementalJoinFilter::Update(
    const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
    const PointSet& collected, const std::vector<uint64_t>& added,
    const std::vector<uint64_t>& removed, FilterJoinStrategy strategy) {
  if (valid_) {
    const bool removal_safe =
        std::none_of(removed.begin(), removed.end(), [this](uint64_t key) {
          return last_->filter.Contains(key);
        });
    if (removal_safe && added.empty()) {
      // Every filter member still matches its witnessing combination, and
      // no combination gained a participant: the filter is unchanged.
      ++reuses_;
      return *last_;
    }
    if (removal_safe && added.size() < collected.size()) {
      ++incremental_updates_;
      last_ =
          ComputeJoinFilterDelta(q, codec, collected, last_->filter, added);
      return *last_;
    }
    // A removed key was in the filter (its partners may have lost their
    // only witness) or the delta dominates the set: recompute.
  }
  ++full_recomputes_;
  last_ = ComputeJoinFilter(q, codec, collected, strategy);
  valid_ = true;
  return *last_;
}

}  // namespace sensjoin::join
