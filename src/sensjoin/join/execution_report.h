#ifndef SENSJOIN_JOIN_EXECUTION_REPORT_H_
#define SENSJOIN_JOIN_EXECUTION_REPORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::join {

/// What a degraded execution certifies about its partial result: exactly
/// which nodes' data is missing, and therefore exactly which result rows
/// can be trusted. A certified partial result contains precisely the truth
/// rows with no contributor in `excluded_nodes` — no more, no fewer — which
/// chaos-test invariants verify row by row (testbed/chaos.h).
struct CompletenessCertificate {
  /// True when any node's data was excluded. A false certificate promises
  /// the result is complete.
  bool degraded = false;

  /// Roots of the subtrees whose contributions were given up on (sorted,
  /// deduplicated; each the shallowest excluded node of its branch).
  std::vector<sim::NodeId> excluded_subtree_roots;

  /// Every node whose data is missing from the result (sorted: the members
  /// of the excluded subtrees plus nodes that never had a route).
  std::vector<sim::NodeId> excluded_nodes;

  /// Orphans that were successfully re-attached by in-network repair (their
  /// data IS in the result; sorted, informational).
  std::vector<sim::NodeId> repaired_roots;

  /// Coverage bound: nodes whose data reached the base station over the
  /// total field.
  int reporting_nodes = 0;
  int total_nodes = 0;

  double coverage() const {
    return total_nodes > 0
               ? static_cast<double>(reporting_nodes) / total_nodes
               : 1.0;
  }

  bool IsExcluded(sim::NodeId id) const {
    return std::binary_search(excluded_nodes.begin(), excluded_nodes.end(),
                              id);
  }
};

/// Outcome of one query execution by either executor.
struct ExecutionReport {
  JoinResult result;
  CostReport cost;

  /// Cumulative costs over the whole Execute call: every attempt (including
  /// the aborted ones), tree rebuilds between attempts, and repair traffic.
  /// Equal to `cost` for single-attempt executions; the honest denominator
  /// for the repair-vs-full-re-execution energy tradeoff.
  CostReport total_cost;

  bool success = false;
  int attempts = 1;  ///< 1 + re-executions after link failures

  /// Graceful-degradation outcome. With degradation disabled (the default)
  /// the certificate always reports complete coverage of the reachable
  /// field; with it enabled, a degraded execution still has success ==
  /// true but certificate.degraded set and the excluded nodes named.
  CompletenessCertificate certificate;

  /// In-network tree-repair outcome (zero unless repair is enabled).
  size_t repairs_attempted = 0;
  size_t repairs_succeeded = 0;

  /// Phase-watchdog expirations that forced an escalation.
  size_t watchdog_expirations = 0;

  /// Phase-level recovery re-requests issued (missing subtree contributions
  /// re-pulled without a full re-execution).
  size_t recovery_requests = 0;

  /// Logical messages delivered with an undetected-corrupt payload (only
  /// possible with the CRC trailer disabled). Each either degraded into a
  /// dropped contribution (the hardened decoder rejected the damage) or a
  /// wrong-but-safe structure.
  size_t corrupted_deliveries = 0;

  // Delivery-validation outcomes (exactly-once layer; cumulative over every
  // attempt of this Execute call). All zero on fault-free runs.

  /// Deliveries of an already-processed (attempt, link, seq) tag the
  /// idempotent receive path dropped: simulator-duplicated messages and
  /// same-tag recovery resends of a message that did arrive.
  size_t duplicate_deliveries = 0;

  /// Deliveries carrying a stale attempt id (cross-attempt replays and
  /// other stragglers of aborted attempts) rejected by the validator.
  size_t stale_messages_dropped = 0;

  /// In-order-eligible deliveries that arrived ahead of an earlier
  /// outstanding sequence number on their link (delay jitter); buffered and
  /// logically applied in order rather than dropped.
  size_t reordered_messages = 0;

  // Pre-computation statistics (zero for the external join).
  size_t collected_points = 0;  ///< distinct quantized join-attribute tuples
  size_t filter_points = 0;     ///< points surviving the filter join
  size_t treecut_exited_nodes = 0;  ///< nodes that finished via Treecut
  size_t delta_changed_nodes = 0;   ///< continuous mode: nodes whose key moved
  size_t delta_resyncs = 0;  ///< continuous mode: lost/corrupted delta hops
                             ///< re-pulled instead of going stale

  /// Continuous service only: number of co-admitted queries that shared
  /// this execution's collection/dissemination/final phases (including this
  /// one; 1 = dedicated). `cost` is the shared group cost, paid once for
  /// the whole group, not per query.
  size_t shared_group_size = 1;
  size_t final_tuples_shipped = 0;  ///< complete tuples sent in the final
                                    ///< phase (Treecut tuples excluded)
  size_t candidate_tuples = 0;      ///< tuples available at the base station
                                    ///< for the final join

  /// Simulated wall-clock span of the execution (informational; the paper's
  /// response-time tradeoff, Sec. VII).
  double response_time_s = 0.0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_EXECUTION_REPORT_H_
