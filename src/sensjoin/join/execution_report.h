#ifndef SENSJOIN_JOIN_EXECUTION_REPORT_H_
#define SENSJOIN_JOIN_EXECUTION_REPORT_H_

#include <cstdint>

#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"

namespace sensjoin::join {

/// Outcome of one query execution by either executor.
struct ExecutionReport {
  JoinResult result;
  CostReport cost;

  bool success = false;
  int attempts = 1;  ///< 1 + re-executions after link failures

  /// Phase-level recovery re-requests issued (missing subtree contributions
  /// re-pulled without a full re-execution).
  size_t recovery_requests = 0;

  /// Logical messages delivered with an undetected-corrupt payload (only
  /// possible with the CRC trailer disabled). Each either degraded into a
  /// dropped contribution (the hardened decoder rejected the damage) or a
  /// wrong-but-safe structure.
  size_t corrupted_deliveries = 0;

  // Pre-computation statistics (zero for the external join).
  size_t collected_points = 0;  ///< distinct quantized join-attribute tuples
  size_t filter_points = 0;     ///< points surviving the filter join
  size_t treecut_exited_nodes = 0;  ///< nodes that finished via Treecut
  size_t delta_changed_nodes = 0;   ///< continuous mode: nodes whose key moved
  size_t final_tuples_shipped = 0;  ///< complete tuples sent in the final
                                    ///< phase (Treecut tuples excluded)
  size_t candidate_tuples = 0;      ///< tuples available at the base station
                                    ///< for the final join

  /// Simulated wall-clock span of the execution (informational; the paper's
  /// response-time tradeoff, Sec. VII).
  double response_time_s = 0.0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_EXECUTION_REPORT_H_
