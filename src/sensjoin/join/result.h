#ifndef SENSJOIN_JOIN_RESULT_H_
#define SENSJOIN_JOIN_RESULT_H_

#include <string>
#include <vector>

#include "sensjoin/data/tuple.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::join {

/// The query answer computed at the base station. For aggregate queries
/// there is a single row; otherwise one row per matching tuple combination.
struct JoinResult {
  std::vector<std::string> column_labels;
  std::vector<std::vector<double>> rows;

  /// Number of tuple combinations satisfying all predicates.
  size_t matched_combinations = 0;

  /// Distinct nodes contributing a tuple to some matching combination
  /// (sorted). |contributing_nodes| / network size is the paper's "fraction
  /// of nodes in the result" parameter.
  std::vector<sim::NodeId> contributing_nodes;

  /// Per-row contributor sets: row_nodes[i] holds the distinct (sorted)
  /// nodes whose tuples formed rows[i]. Empty for aggregate queries (one
  /// synthetic row). This is what lets a completeness certificate be
  /// checked against the result exactly: a degraded execution must contain
  /// precisely the truth rows with no excluded contributor.
  std::vector<std::vector<sim::NodeId>> row_nodes;
};

/// Computes the exact join over full-precision tuples, applying the
/// query's join predicates, SELECT list and aggregates. `per_table_tuples`
/// holds, for each FROM entry, the candidate tuples of that table's
/// relation (full schema width; selections are assumed already applied).
/// Borrowed pointers must outlive the call.
JoinResult ComputeExactJoin(
    const query::AnalyzedQuery& q,
    const std::vector<std::vector<const data::Tuple*>>& per_table_tuples);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_RESULT_H_
