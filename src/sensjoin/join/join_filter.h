#ifndef SENSJOIN_JOIN_JOIN_FILTER_H_
#define SENSJOIN_JOIN_JOIN_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {

/// Output of the base station's pre-computation join (step 1a).
struct FilterJoinResult {
  /// The join filter: the subset of collected keys that participate in at
  /// least one (conservatively) matching combination. Nodes whose
  /// join-attribute tuple is in this set ship their complete tuple.
  PointSet filter;

  /// Key combinations whose predicates were evaluated.
  size_t combinations_evaluated = 0;
  /// Combinations that were not certainly false.
  size_t combinations_matched = 0;

  /// True when the indexed engine ran with at least one probe constraint.
  bool used_index = false;
  /// Index range lookups performed (indexed engine only).
  size_t index_probes = 0;
  /// Probe constraints the planner extracted from the join predicates.
  size_t constraints_extracted = 0;

  FilterJoinResult() : filter(nullptr) {}
  explicit FilterJoinResult(PointSet f) : filter(std::move(f)) {}
};

/// Engine selection for ComputeJoinFilter. kAuto uses the indexed engine
/// whenever the planner extracts at least one probe constraint from the
/// join predicates, and the exhaustive nested-loop DFS otherwise. The two
/// engines produce bit-identical filters and combinations_matched counts;
/// kNaive/kIndexed force one engine (reference semantics / benchmarks).
enum class FilterJoinStrategy { kAuto, kNaive, kIndexed };

/// Maps the FROM-list tables of `q` to relation bit indices (bit r of a
/// key's flags = membership in the r-th distinct relation of the query, in
/// FROM order).
std::vector<int> TableRelationBits(const query::AnalyzedQuery& q);

/// Joins the collected (quantized) join-attribute tuples at the base
/// station. Join predicates are evaluated over cell intervals with
/// three-valued logic; a combination is kept unless some predicate is
/// certainly false, so quantization can only add false positives, never
/// drop a real result tuple (footnote 2). A key is eligible for table t iff
/// its relation flags include t's relation.
FilterJoinResult ComputeJoinFilter(
    const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
    const PointSet& collected,
    FilterJoinStrategy strategy = FilterJoinStrategy::kAuto);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_JOIN_FILTER_H_
