#ifndef SENSJOIN_JOIN_JOIN_FILTER_H_
#define SENSJOIN_JOIN_JOIN_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {

/// Output of the base station's pre-computation join (step 1a).
struct FilterJoinResult {
  /// The join filter: the subset of collected keys that participate in at
  /// least one (conservatively) matching combination. Nodes whose
  /// join-attribute tuple is in this set ship their complete tuple.
  PointSet filter;

  /// Key combinations whose predicates were evaluated.
  size_t combinations_evaluated = 0;
  /// Combinations that were not certainly false.
  size_t combinations_matched = 0;

  /// True when the indexed engine ran with at least one probe constraint.
  bool used_index = false;
  /// Index range lookups performed (indexed engine only).
  size_t index_probes = 0;
  /// Probe constraints the planner extracted from the join predicates.
  size_t constraints_extracted = 0;

  FilterJoinResult() : filter(nullptr) {}
  explicit FilterJoinResult(PointSet f) : filter(std::move(f)) {}
};

/// Engine selection for ComputeJoinFilter. kAuto uses the indexed engine
/// whenever the planner extracts at least one probe constraint from the
/// join predicates, and the exhaustive nested-loop DFS otherwise. The two
/// engines produce bit-identical filters and combinations_matched counts;
/// kNaive/kIndexed force one engine (reference semantics / benchmarks).
enum class FilterJoinStrategy { kAuto, kNaive, kIndexed };

/// Maps the FROM-list tables of `q` to relation bit indices (bit r of a
/// key's flags = membership in the r-th distinct relation of the query, in
/// FROM order).
std::vector<int> TableRelationBits(const query::AnalyzedQuery& q);

/// Joins the collected (quantized) join-attribute tuples at the base
/// station. Join predicates are evaluated over cell intervals with
/// three-valued logic; a combination is kept unless some predicate is
/// certainly false, so quantization can only add false positives, never
/// drop a real result tuple (footnote 2). A key is eligible for table t iff
/// its relation flags include t's relation.
FilterJoinResult ComputeJoinFilter(
    const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
    const PointSet& collected,
    FilterJoinStrategy strategy = FilterJoinStrategy::kAuto);

/// Incrementally extends `previous` — the filter of the previous epoch's
/// collected set — to the filter of `collected`, where `added` is the
/// set-level difference collected_now \ collected_before.
///
/// Precondition (caller-checked): no key removed since the previous epoch
/// was in `previous`. A key outside the filter matched no combination, so
/// its removal cannot invalidate any other key's membership; every key of
/// `previous` therefore still matches, and new members can only come from
/// combinations touching at least one added key. The DFS enumerates exactly
/// those (pivoting on the first added position), so the result is
/// bit-identical to ComputeJoinFilter(q, codec, collected).filter at a cost
/// proportional to the added fraction instead of the full cross product.
FilterJoinResult ComputeJoinFilterDelta(const query::AnalyzedQuery& q,
                                        const JoinAttrCodec& codec,
                                        const PointSet& collected,
                                        const PointSet& previous,
                                        const std::vector<uint64_t>& added);

/// Epoch-to-epoch join-filter cache for continuous execution: picks the
/// cheapest sound maintenance path per epoch (reuse / delta DFS / full
/// recompute) from the set-level collection delta reported by
/// DeltaGroupExecutor. The produced filter is always bit-identical to a
/// from-scratch ComputeJoinFilter over the same collected set.
class IncrementalJoinFilter {
 public:
  /// Returns the filter for `collected`. `added`/`removed` describe the
  /// set-level change since the previous Update; they are ignored when the
  /// cache is empty (first call or after Reset), which forces a full
  /// computation.
  const FilterJoinResult& Update(
      const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
      const PointSet& collected, const std::vector<uint64_t>& added,
      const std::vector<uint64_t>& removed,
      FilterJoinStrategy strategy = FilterJoinStrategy::kAuto);

  /// Drops the cache; the next Update recomputes from scratch.
  void Reset() { valid_ = false; }

  bool valid() const { return valid_; }
  /// Last produced result (valid() only).
  const FilterJoinResult& last() const { return *last_; }

  /// Maintenance-path counters (cumulative since construction).
  size_t reuses() const { return reuses_; }
  size_t incremental_updates() const { return incremental_updates_; }
  size_t full_recomputes() const { return full_recomputes_; }

 private:
  bool valid_ = false;
  /// Engaged after the first Update (PointSet has no null state, so the
  /// cache cannot be default-constructed).
  std::optional<FilterJoinResult> last_;
  size_t reuses_ = 0;
  size_t incremental_updates_ = 0;
  size_t full_recomputes_ = 0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_JOIN_FILTER_H_
