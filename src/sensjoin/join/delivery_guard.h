#ifndef SENSJOIN_JOIN_DELIVERY_GUARD_H_
#define SENSJOIN_JOIN_DELIVERY_GUARD_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sensjoin/sim/packet.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::join {

/// How the exactly-once layer classified one delivery.
enum class DeliveryVerdict {
  kFirstDelivery,  ///< first arrival of a stamped message: process it
  kReordered,      ///< first arrival, but it overtook an earlier outstanding
                   ///< seq on its link: buffered, logically applied in order
  kDuplicate,      ///< tag already delivered (or evicted from the window):
                   ///< idempotent drop
  kStale,          ///< attempt id older than the current attempt: reject
  kUntagged,       ///< exempt traffic (beacons, floods, broadcasts, legacy
                   ///< senders): pass through
  kPhantom,        ///< tag claims the current attempt but was never stamped
                   ///< on that link — the medium cannot produce this; a
                   ///< non-zero phantom count means a protocol bug
};

const char* DeliveryVerdictName(DeliveryVerdict verdict);

/// The sender+receiver half of exactly-once delivery semantics, shared by
/// both join executors (and, through callbacks, net::TreeMaintenance).
///
/// Senders Stamp every logical unicast with (attempt id, per-(src,dst)-link
/// sequence); the receive path feeds every delivery through Classify, which
/// implements an idempotent dedup window per link: duplicates of an
/// already-delivered tag are dropped, traffic from aborted attempts is
/// rejected as stale, and arrivals that overtook an earlier outstanding
/// sequence number (delay jitter) are recognized as reordered — buffered
/// within the phase instead of dropped, which is sound because a phase only
/// completes once every outstanding tag of the phase has been resolved.
///
/// The guard draws no randomness and, unless `tag_wire_bytes > 0`, adds no
/// wire bytes — stamping alone leaves fault-free runs bit-identical to the
/// seed.
///
/// Link state is sharded by sender: Stamp and Retract for src A touch only
/// A's shard, so turns of distinct nodes may stamp concurrently under the
/// windowed engine (a turn only ever stamps its own node's sends). Classify
/// and BeginAttempt are receiver/coordinator-side and must stay on the
/// delivery thread. Pass `num_nodes` to pre-size the shard table; without
/// it the table lazily grows, which is only safe single-threaded.
class DeliveryGuard {
 public:
  /// `dedup_window` bounds the per-link memory (entries per link);
  /// `tag_wire_bytes` is added to every stamped message's payload when the
  /// protocol charges the tag on the wire (0 keeps frames untouched).
  /// `num_nodes` pre-sizes the per-sender shard table (required for
  /// concurrent stamping; 0 grows on demand).
  explicit DeliveryGuard(int dedup_window, int tag_wire_bytes = 0,
                         int num_nodes = 0);

  /// Starts (or restarts) an attempt: bumps the current attempt id and
  /// forgets all link windows — a new attempt re-sends everything under
  /// fresh sequences, and everything still flying from before is stale.
  /// Counters are cumulative across attempts.
  void BeginAttempt(uint32_t attempt_id);
  uint32_t attempt_id() const { return attempt_id_; }

  /// Stamps `msg` with (current attempt, next sequence of the src->dst
  /// link) and registers the tag in the link's window. Call exactly once
  /// per logical message, before the first send; recovery resends of the
  /// same logical message keep the tag (that is what makes them safe).
  void Stamp(sim::Message& msg);

  /// Withdraws the expectation that `msg`'s tag will ever be delivered:
  /// call when a stamped send permanently failed (or the message was
  /// re-routed and freshly stamped for the new link), so the ordering
  /// check never waits on a delivery that cannot come.
  void Retract(const sim::Message& msg);

  /// Classifies the delivery of `msg` at `receiver` and updates the window
  /// state. Only kFirstDelivery / kReordered / kUntagged messages should be
  /// processed by the caller.
  DeliveryVerdict Classify(sim::NodeId receiver, const sim::Message& msg);

  // Cumulative outcome counters (across all attempts of one Execute).
  uint64_t duplicate_deliveries() const { return duplicates_; }
  uint64_t stale_drops() const { return stale_drops_; }
  uint64_t reordered_deliveries() const { return reordered_; }
  uint64_t phantom_deliveries() const { return phantoms_; }

 private:
  struct Entry {
    uint32_t seq = 0;
    bool delivered = false;
  };
  struct LinkState {
    uint32_t next_seq = 0;  ///< next sequence to stamp on this link
    std::deque<Entry> window;
  };

  /// Mutable access to the src->dst link, growing the shard table when the
  /// guard was built without `num_nodes` (single-threaded use only).
  LinkState& LinkFor(sim::NodeId src, sim::NodeId dst);
  /// Lookup without insertion; nullptr when the link was never stamped.
  LinkState* FindLink(sim::NodeId src, sim::NodeId dst);

  int dedup_window_;
  int tag_wire_bytes_;
  uint32_t attempt_id_ = 0;
  /// Per-sender link windows: by_src_[src][dst]. Sharding by sender keeps
  /// concurrent Stamp calls (one per in-flight turn) on disjoint maps.
  std::vector<std::unordered_map<sim::NodeId, LinkState>> by_src_;
  uint64_t duplicates_ = 0;
  uint64_t stale_drops_ = 0;
  uint64_t reordered_ = 0;
  uint64_t phantoms_ = 0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_DELIVERY_GUARD_H_
