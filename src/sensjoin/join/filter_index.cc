#include "sensjoin/join/filter_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/query/interval_eval.h"

namespace sensjoin::join {
namespace {

/// IntervalContext over an in-progress table->row assignment (same values
/// the naive engine's context serves; constraint evaluation reads through
/// it).
class AssignmentContext : public query::IntervalContext {
 public:
  explicit AssignmentContext(
      const std::vector<const query::Interval*>* assignment)
      : assignment_(assignment) {}

  query::Interval Value(int table_index, int attr_index) const override {
    const query::Interval* row = (*assignment_)[table_index];
    SENSJOIN_DCHECK(row != nullptr);
    return row[attr_index];
  }

 private:
  const std::vector<const query::Interval*>* assignment_;
};

/// Maps a conservative allowed interval of raw values to the inclusive
/// coordinate range of quantization cells whose intervals intersect it,
/// widened by one cell on each side: the inverse constraint arithmetic and
/// the forward predicate evaluation round independently, and a full cell of
/// slack (orders of magnitude above ulp-level disagreement) keeps the probe
/// a strict superset of what the naive engine retains. Returns false when
/// the range is empty (the predicate is certainly false for every cell).
bool CellRange(const Quantizer& quant, int dim, query::Interval allowed,
               uint32_t* lo_out, uint32_t* hi_out) {
  if (!(allowed.lo <= allowed.hi)) return false;  // empty (or NaN: callers
                                                  // return full range first)
  const uint32_t size = quant.size_of_dim(dim);
  // First cell whose upper edge reaches allowed.lo. The top cell extends to
  // +inf, so the search always lands inside [0, size).
  uint32_t lo = 0;
  uint32_t hi = size - 1;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (quant.CellInterval(dim, mid).hi >= allowed.lo) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const uint32_t first = lo;
  // Last cell whose lower edge stays below allowed.hi. Cell 0 extends to
  // -inf, so this search lands inside [0, size) as well.
  lo = 0;
  hi = size - 1;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo + 1) / 2;
    if (quant.CellInterval(dim, mid).lo <= allowed.hi) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const uint32_t last = lo;
  if (first > last) return false;
  *lo_out = first > 0 ? first - 1 : 0;
  *hi_out = last < size - 1 ? last + 1 : size - 1;
  return true;
}

/// Keys of one eligibility class sorted by one dimension's coordinate:
/// coord[i] ascending, key_index[i] the position in the collected key
/// vector. Ties keep key order, so probing is deterministic.
struct DimIndex {
  std::vector<uint32_t> coord;
  std::vector<uint32_t> key_index;
};

}  // namespace

FilterJoinPlan::FilterJoinPlan(const query::AnalyzedQuery& q,
                               const JoinAttrCodec& codec) {
  const int num_tables = q.num_tables();
  const Quantizer& quant = codec.quantizer();
  std::map<int, int> dim_of_attr;
  for (int d = 0; d < quant.num_dims(); ++d) {
    dim_of_attr[quant.dim(d).attr_index] = d;
  }

  const auto& preds = q.join_predicates();
  const int num_preds = static_cast<int>(preds.size());
  std::vector<std::set<int>> pred_tables(num_preds);
  // ext[p][t]: probe constraints of predicate p with table t as the probe,
  // restricted to attributes the quantizer actually indexes.
  std::vector<std::vector<std::vector<Probe>>> ext(
      num_preds, std::vector<std::vector<Probe>>(num_tables));
  std::vector<int> pred_count(num_tables, 0);
  for (int p = 0; p < num_preds; ++p) {
    preds[p]->CollectTableIndices(&pred_tables[p]);
    for (int t : pred_tables[p]) {
      ++pred_count[t];
      for (query::ProbeConstraint& c :
           query::ProbeConstraint::Extract(*preds[p], t)) {
        const auto it = dim_of_attr.find(c.attr_index());
        if (it != dim_of_attr.end()) {
          ext[p][t].push_back(Probe{std::move(c), it->second});
        }
      }
    }
  }

  // Greedy probing order (see class comment).
  std::vector<bool> placed(num_tables, false);
  std::vector<bool> scheduled(num_preds, false);
  for (int slot = 0; slot < num_tables; ++slot) {
    int best = -1;
    size_t best_probes = 0;
    int best_preds = -1;
    for (int t = 0; t < num_tables; ++t) {
      if (placed[t]) continue;
      size_t probes = 0;
      if (slot > 0) {
        for (int p = 0; p < num_preds; ++p) {
          if (scheduled[p] || pred_tables[p].count(t) == 0) continue;
          bool complete = true;
          for (int other : pred_tables[p]) {
            if (other != t && !placed[other]) complete = false;
          }
          if (complete) probes += ext[p][t].size();
        }
      }
      if (best < 0 || probes > best_probes ||
          (probes == best_probes && pred_count[t] > best_preds)) {
        best = t;
        best_probes = probes;
        best_preds = pred_count[t];
      }
    }
    placed[best] = true;

    Level level;
    level.table = best;
    for (int p = 0; p < num_preds; ++p) {
      if (scheduled[p]) continue;
      bool complete = true;
      for (int other : pred_tables[p]) {
        if (!placed[other]) complete = false;
      }
      if (!complete) continue;
      scheduled[p] = true;
      level.preds.push_back(preds[p].get());
      level.compiled.push_back(query::CompiledPredicate::Compile(*preds[p]));
      // A predicate completing at this level necessarily references this
      // level's table, so its probe extraction targets `best`.
      for (Probe& probe : ext[p][best]) {
        level.probes.push_back(std::move(probe));
        ++num_constraints_;
      }
    }
    levels_.push_back(std::move(level));
  }
}

FilterJoinResult ComputeJoinFilterIndexed(const query::AnalyzedQuery& q,
                                          const JoinAttrCodec& codec,
                                          const PointSet& collected,
                                          const FilterJoinPlan& plan) {
  const std::vector<uint64_t>& keys = collected.keys();
  const int num_tables = q.num_tables();
  const int num_attrs = q.schema().num_attributes();
  const Quantizer& quant = codec.quantizer();
  const int num_dims = quant.num_dims();
  SENSJOIN_CHECK(keys.size() < std::numeric_limits<uint32_t>::max());

  // Interval row and per-dimension coordinates per key (the same cell
  // decoding the naive engine performs, plus the raw coordinates the
  // indexes sort by). Rows live in one contiguous block — the candidate
  // re-evaluation loop is the hot path and reads them in random key order.
  std::vector<query::Interval> rows(keys.size() * num_attrs);
  std::vector<uint32_t> coords(keys.size() * num_dims);
  for (size_t k = 0; k < keys.size(); ++k) {
    const std::vector<uint32_t> cell = codec.KeyCoordinates(keys[k]);
    for (int d = 0; d < num_dims; ++d) {
      coords[k * num_dims + d] = cell[d];
      rows[k * num_attrs + quant.dim(d).attr_index] =
          quant.CellInterval(d, cell[d]);
    }
  }

  // Eligibility per table (identical to the naive engine). Tables of the
  // same relation share the class, so indexes are cached per relation bit.
  const std::vector<int> rel_bits = TableRelationBits(q);
  std::vector<std::vector<uint32_t>> eligible(num_tables);
  for (size_t k = 0; k < keys.size(); ++k) {
    const uint8_t flags = codec.KeyFlags(keys[k]);
    for (int t = 0; t < num_tables; ++t) {
      if (codec.flag_bits() == 0 || ((flags >> rel_bits[t]) & 1)) {
        eligible[t].push_back(static_cast<uint32_t>(k));
      }
    }
  }

  // Lazily built sorted indexes, keyed by (relation bit, dimension).
  std::map<std::pair<int, int>, DimIndex> indexes;
  auto index_for = [&](int table, int dim) -> const DimIndex& {
    const int rel = codec.flag_bits() == 0 ? 0 : rel_bits[table];
    auto [it, inserted] = indexes.try_emplace({rel, dim});
    if (inserted) {
      DimIndex& idx = it->second;
      idx.key_index = eligible[table];
      std::stable_sort(idx.key_index.begin(), idx.key_index.end(),
                       [&](uint32_t a, uint32_t b) {
                         return coords[a * num_dims + dim] <
                                coords[b * num_dims + dim];
                       });
      idx.coord.reserve(idx.key_index.size());
      for (uint32_t k : idx.key_index) {
        idx.coord.push_back(coords[k * num_dims + dim]);
      }
    }
    return it->second;
  };

  FilterJoinResult result(codec.EmptySet());
  result.used_index = plan.has_probes();
  result.constraints_extracted =
      static_cast<size_t>(plan.num_constraints());
  std::vector<char> matched(keys.size(), 0);
  std::vector<const query::Interval*> assignment(num_tables, nullptr);
  std::vector<uint32_t> level_key(num_tables, 0);
  const AssignmentContext ctx(&assignment);
  const std::vector<FilterJoinPlan::Level>& levels = plan.levels();

  // Per-dimension combined coordinate window, scratch per level.
  struct DimWindow {
    int dim;
    uint32_t lo;
    uint32_t hi;
  };
  std::vector<std::vector<DimWindow>> windows(levels.size());

  auto dfs = [&](auto&& self, int li) -> void {
    if (li == num_tables) {
      ++result.combinations_matched;
      for (int i = 0; i < num_tables; ++i) matched[level_key[i]] = 1;
      return;
    }
    const FilterJoinPlan::Level& level = levels[li];
    const int t = level.table;

    auto try_key = [&](uint32_t k) {
      assignment[t] = &rows[static_cast<size_t>(k) * num_attrs];
      level_key[li] = k;
      for (size_t i = 0; i < level.compiled.size(); ++i) {
        ++result.combinations_evaluated;
        if (level.compiled[i].Eval(assignment.data()) == query::Tri::kFalse) {
          return;
        }
      }
      self(self, li + 1);
    };

    if (level.probes.empty()) {
      for (uint32_t k : eligible[t]) try_key(k);
      assignment[t] = nullptr;
      return;
    }

    // Intersect the probes into per-dimension coordinate windows.
    std::vector<DimWindow>& wins = windows[li];
    wins.clear();
    bool empty = false;
    for (const FilterJoinPlan::Probe& probe : level.probes) {
      ++result.index_probes;
      const query::Interval allowed = probe.constraint.AllowedRange(ctx);
      uint32_t lo = 0;
      uint32_t hi = 0;
      if (!CellRange(quant, probe.dim, allowed, &lo, &hi)) {
        empty = true;
        break;
      }
      bool found = false;
      for (DimWindow& w : wins) {
        if (w.dim == probe.dim) {
          w.lo = std::max(w.lo, lo);
          w.hi = std::min(w.hi, hi);
          if (w.lo > w.hi) empty = true;
          found = true;
          break;
        }
      }
      if (!found) wins.push_back({probe.dim, lo, hi});
    }
    if (empty) {
      assignment[t] = nullptr;
      return;
    }

    // Probe the narrowest window's index; the other windows filter by a
    // plain coordinate compare.
    size_t best = 0;
    size_t best_count = std::numeric_limits<size_t>::max();
    const uint32_t* best_begin = nullptr;
    const uint32_t* best_end = nullptr;
    for (size_t w = 0; w < wins.size(); ++w) {
      const DimIndex& idx = index_for(t, wins[w].dim);
      const auto begin = std::lower_bound(idx.coord.begin(), idx.coord.end(),
                                          wins[w].lo);
      const auto end =
          std::upper_bound(begin, idx.coord.end(), wins[w].hi);
      const size_t count = static_cast<size_t>(end - begin);
      if (count < best_count) {
        best = w;
        best_count = count;
        const size_t off = static_cast<size_t>(begin - idx.coord.begin());
        best_begin = idx.key_index.data() + off;
        best_end = best_begin + count;
      }
    }
    for (const uint32_t* p = best_begin; p != best_end; ++p) {
      const uint32_t k = *p;
      bool inside = true;
      for (size_t w = 0; w < wins.size(); ++w) {
        if (w == best) continue;
        const uint32_t c = coords[k * num_dims + wins[w].dim];
        if (c < wins[w].lo || c > wins[w].hi) {
          inside = false;
          break;
        }
      }
      if (inside) try_key(k);
    }
    assignment[t] = nullptr;
  };
  dfs(dfs, 0);

  std::vector<uint64_t> filter_keys;
  for (size_t k = 0; k < keys.size(); ++k) {
    if (matched[k]) filter_keys.push_back(keys[k]);
  }
  result.filter = PointSet::FromKeys(codec.layout(), std::move(filter_keys));
  return result;
}

}  // namespace sensjoin::join
