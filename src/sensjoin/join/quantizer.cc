#include "sensjoin/join/quantizer.h"

#include <cmath>
#include <limits>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {
namespace {

/// Smallest power of two >= n (n >= 1).
uint32_t RoundUpToPowOf2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

int Log2OfPow2(uint32_t p) {
  int bits = 0;
  while (p > 1) {
    p >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

StatusOr<Quantizer> Quantizer::Create(std::vector<DimensionSpec> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("quantizer needs at least one dimension");
  }
  for (const DimensionSpec& d : dims) {
    if (d.resolution <= 0.0) {
      return Status::InvalidArgument("non-positive resolution for attribute " +
                                     d.attr_name);
    }
    if (d.max_val < d.min_val) {
      return Status::InvalidArgument("max < min for attribute " + d.attr_name);
    }
  }
  return Quantizer(std::move(dims));
}

StatusOr<Quantizer> Quantizer::FromConfig(const data::Schema& schema,
                                          const std::vector<int>& attr_indices,
                                          const QuantizationConfig& config) {
  std::vector<DimensionSpec> dims;
  dims.reserve(attr_indices.size());
  for (int idx : attr_indices) {
    if (idx < 0 || idx >= schema.num_attributes()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    const std::string& name = schema.attribute(idx).name;
    auto it = config.by_attr.find(name);
    if (it == config.by_attr.end()) {
      return Status::NotFound("no quantization configured for attribute '" +
                              name + "'");
    }
    DimensionSpec d;
    d.attr_name = name;
    d.attr_index = idx;
    d.min_val = it->second.min_val;
    d.max_val = it->second.max_val;
    d.resolution = it->second.resolution;
    dims.push_back(std::move(d));
  }
  return Create(std::move(dims));
}

Quantizer::Quantizer(std::vector<DimensionSpec> dims)
    : dims_(std::move(dims)) {
  size_of_dim_.reserve(dims_.size());
  bits_per_dim_.reserve(dims_.size());
  for (const DimensionSpec& d : dims_) {
    // SizeOfDim = ceil((max - min) / resolution) + 1, rounded up to a power
    // of two (Fig. 7 lines 2-5).
    const double cells =
        std::ceil((d.max_val - d.min_val) / d.resolution) + 1.0;
    const uint32_t size = RoundUpToPowOf2(static_cast<uint32_t>(cells));
    size_of_dim_.push_back(size);
    bits_per_dim_.push_back(Log2OfPow2(size));
    total_bits_ += bits_per_dim_.back();
  }
}

uint32_t Quantizer::Coordinate(int i, double value) const {
  const DimensionSpec& d = dims_[i];
  double p = std::ceil((value - d.min_val) / d.resolution);
  if (p < 0.0) p = 0.0;
  const uint32_t size = size_of_dim_[i];
  uint32_t c = static_cast<uint32_t>(p);
  if (p >= static_cast<double>(size)) c = size - 1;
  return c;
}

query::Interval Quantizer::CellInterval(int i, uint32_t c) const {
  const DimensionSpec& d = dims_[i];
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Coordinate() uses ceil((v - min)/res), so cell c holds raw values in
  // (min + (c-1)*res, min + c*res]; we widen to the closed interval.
  double lo = d.min_val + (static_cast<double>(c) - 1.0) * d.resolution;
  double hi = d.min_val + static_cast<double>(c) * d.resolution;
  if (c == 0) lo = -kInf;                       // clamped from below
  if (c == size_of_dim_[i] - 1) hi = kInf;      // clamped from above
  return {lo, hi};
}

double Quantizer::CellCenter(int i, uint32_t c) const {
  const DimensionSpec& d = dims_[i];
  const double hi = d.min_val + static_cast<double>(c) * d.resolution;
  if (c == 0) return d.min_val;
  if (c == size_of_dim_[i] - 1 &&
      hi > d.max_val) {
    return d.max_val;
  }
  return hi - d.resolution / 2.0;
}

}  // namespace sensjoin::join
