#include "sensjoin/join/point_set.h"

#include <algorithm>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {
namespace {

uint64_t LowMask(int bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

}  // namespace

PointSetLayout::PointSetLayout(int flag_bits, std::vector<int> z_level_widths)
    : flag_bits_(flag_bits) {
  SENSJOIN_CHECK(flag_bits >= 0 && flag_bits <= 6)
      << "at most 6 relations supported (presence mask fits 64 bits)";
  if (flag_bits > 0) level_widths_.push_back(flag_bits);
  for (int w : z_level_widths) {
    SENSJOIN_CHECK(w >= 1 && w <= 6) << "level width out of range";
    level_widths_.push_back(w);
  }
  SENSJOIN_CHECK(!level_widths_.empty());
  suffix_bits_.assign(level_widths_.size() + 1, 0);
  for (int l = static_cast<int>(level_widths_.size()) - 1; l >= 0; --l) {
    suffix_bits_[l] = suffix_bits_[l + 1] + level_widths_[l];
  }
  total_key_bits_ = suffix_bits_[0];
  SENSJOIN_CHECK_LE(total_key_bits_, 64);
}

uint64_t PointSetLayout::MakeKey(uint8_t flags, uint64_t z) const {
  const int z_bits = total_key_bits_ - flag_bits_;
  SENSJOIN_DCHECK((z & ~LowMask(z_bits)) == 0);
  SENSJOIN_DCHECK(flags <= LowMask(flag_bits_));
  if (flag_bits_ == 0) return z;
  return (static_cast<uint64_t>(flags) << z_bits) | z;
}

uint8_t PointSetLayout::FlagsOfKey(uint64_t key) const {
  if (flag_bits_ == 0) return 0;
  const int z_bits = total_key_bits_ - flag_bits_;
  return static_cast<uint8_t>(key >> z_bits);
}

uint64_t PointSetLayout::ZOfKey(uint64_t key) const {
  const int z_bits = total_key_bits_ - flag_bits_;
  return key & LowMask(z_bits);
}

PointSet::PointSet(std::shared_ptr<const PointSetLayout> layout)
    : layout_(std::move(layout)) {
  SENSJOIN_CHECK(layout_ != nullptr);
}

PointSet PointSet::FromKeys(std::shared_ptr<const PointSetLayout> layout,
                            std::vector<uint64_t> keys) {
  PointSet set(std::move(layout));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint64_t k : keys) {
    SENSJOIN_CHECK((k & ~LowMask(set.layout_->total_key_bits())) == 0)
        << "key exceeds layout width";
  }
  set.keys_ = std::move(keys);
  return set;
}

void PointSet::Insert(uint64_t key) {
  SENSJOIN_DCHECK((key & ~LowMask(layout_->total_key_bits())) == 0);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it != keys_.end() && *it == key) return;
  keys_.insert(it, key);
  cache_valid_ = false;
}

void PointSet::InsertAll(std::vector<uint64_t> batch) {
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  SENSJOIN_DCHECK(std::all_of(batch.begin(), batch.end(), [&](uint64_t k) {
    return (k & ~LowMask(layout_->total_key_bits())) == 0;
  }));
  std::vector<uint64_t> merged;
  merged.reserve(keys_.size() + batch.size());
  std::set_union(keys_.begin(), keys_.end(), batch.begin(), batch.end(),
                 std::back_inserter(merged));
  if (merged.size() != keys_.size()) cache_valid_ = false;
  keys_ = std::move(merged);
}

bool PointSet::Contains(uint64_t key) const {
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

PointSet PointSet::Union(const PointSet& a, const PointSet& b) {
  SENSJOIN_CHECK(*a.layout_ == *b.layout_);
  PointSet out(a.layout_);
  out.keys_.reserve(a.keys_.size() + b.keys_.size());
  std::set_union(a.keys_.begin(), a.keys_.end(), b.keys_.begin(),
                 b.keys_.end(), std::back_inserter(out.keys_));
  return out;
}

void PointSet::UnionInPlace(const PointSet& other,
                            std::vector<uint64_t>* scratch) {
  SENSJOIN_CHECK(*layout_ == *other.layout_);
  if (other.keys_.empty()) return;
  if (keys_.empty()) {
    keys_ = other.keys_;
    cache_valid_ = false;
    return;
  }
  std::vector<uint64_t> local;
  std::vector<uint64_t>& merged = scratch != nullptr ? *scratch : local;
  merged.clear();
  merged.reserve(keys_.size() + other.keys_.size());
  std::set_union(keys_.begin(), keys_.end(), other.keys_.begin(),
                 other.keys_.end(), std::back_inserter(merged));
  keys_.swap(merged);  // the old buffer stays in `merged` for reuse
  cache_valid_ = false;
}

PointSet PointSet::Intersect(const PointSet& a, const PointSet& b) {
  SENSJOIN_CHECK(*a.layout_ == *b.layout_);
  PointSet out(a.layout_);
  std::set_intersection(a.keys_.begin(), a.keys_.end(), b.keys_.begin(),
                        b.keys_.end(), std::back_inserter(out.keys_));
  return out;
}

void PointSet::EncodeNode(size_t begin, size_t end, int level,
                          int consumed_bits, BitWriter* out) const {
  const int suffix = layout_->total_key_bits() - consumed_bits;
  SENSJOIN_DCHECK(end > begin);
  const size_t list_bits =
      (end - begin) * (1 + static_cast<size_t>(suffix)) + 1;

  if (level < layout_->num_levels()) {
    // Speculatively emit the subdivided form — index node marker, presence
    // mask, children — straight into `out`, then roll back if listing the
    // points is at least as short (the cost-based decomposition threshold
    // subdivides only when strictly shorter).
    const size_t mark = out->size_bits();
    const int width = layout_->level_widths()[level];
    const int digit_shift = suffix - width;
    const uint64_t num_children = 1ull << width;
    out->WriteBit(false);
    uint64_t mask = 0;  // bit (num_children-1-d) set if child d present
    for (size_t i = begin; i < end; ++i) {
      mask |= 1ull << (num_children - 1 -
                       ((keys_[i] >> digit_shift) & LowMask(width)));
    }
    out->WriteBits(mask, static_cast<int>(num_children));
    size_t i = begin;
    while (i < end) {
      const uint64_t digit = (keys_[i] >> digit_shift) & LowMask(width);
      size_t j = i;
      while (j < end &&
             ((keys_[j] >> digit_shift) & LowMask(width)) == digit) {
        ++j;
      }
      EncodeNode(i, j, level + 1, consumed_bits + width, out);
      i = j;
    }
    if (out->size_bits() - mark < list_bits) return;
    out->Truncate(mark);
  }

  // List the points relative to the current path. Below the deepest level
  // this is the only form (each point contributes just its presence marker).
  for (size_t i = begin; i < end; ++i) {
    out->WriteBit(true);
    out->WriteBits(keys_[i] & LowMask(suffix), suffix);
  }
  out->WriteBit(false);
}

size_t PointSet::NodeEncodedBits(size_t begin, size_t end, int level,
                                 int consumed_bits) const {
  const int suffix = layout_->total_key_bits() - consumed_bits;
  const size_t list_bits =
      (end - begin) * (1 + static_cast<size_t>(suffix)) + 1;
  if (level >= layout_->num_levels()) return list_bits;
  const int width = layout_->level_widths()[level];
  const int digit_shift = suffix - width;
  size_t sub_bits = 1 + (1ull << width);
  size_t i = begin;
  while (i < end) {
    const uint64_t digit = (keys_[i] >> digit_shift) & LowMask(width);
    size_t j = i;
    while (j < end && ((keys_[j] >> digit_shift) & LowMask(width)) == digit) {
      ++j;
    }
    sub_bits += NodeEncodedBits(i, j, level + 1, consumed_bits + width);
    i = j;
  }
  return std::min(sub_bits, list_bits);
}

BitWriter PointSet::Encode() const {
  BitWriter out;
  EncodeTo(&out);
  return out;
}

void PointSet::EncodeTo(BitWriter* out) const {
  out->Clear();  // keeps the backing capacity for reuse across nodes
  if (keys_.empty()) return;
  out->ReserveBits(EncodedBits());
  EncodeNode(0, keys_.size(), 0, 0, out);
  SENSJOIN_DCHECK(out->size_bits() == EncodedBits());
}

size_t PointSet::EncodedBits() const {
  if (!cache_valid_) {
    cached_encoded_bits_ =
        keys_.empty() ? 0 : NodeEncodedBits(0, keys_.size(), 0, 0);
    cache_valid_ = true;
  }
  return cached_encoded_bits_;
}

namespace {

/// Recursive decoder for the node grammar. `prefix` holds the digits
/// consumed so far (path from the root).
Status DecodeNode(const PointSetLayout& layout, BitReader* reader, int level,
                  uint64_t prefix, int consumed_bits,
                  std::vector<uint64_t>* out) {
  const int suffix = layout.total_key_bits() - consumed_bits;
  if (reader->RemainingBits() < 1) {
    return Status::InvalidArgument("truncated point-set encoding");
  }
  if (reader->ReadBit()) {
    // Point list: first '1' already consumed.
    while (true) {
      if (reader->RemainingBits() < static_cast<size_t>(suffix) + 1) {
        return Status::InvalidArgument("truncated point list");
      }
      const uint64_t v = reader->ReadBits(suffix);
      out->push_back((prefix << suffix) | v);
      if (!reader->ReadBit()) break;
    }
    return Status::Ok();
  }
  // Index node.
  if (level >= layout.num_levels()) {
    return Status::InvalidArgument("index node below the deepest level");
  }
  const int width = layout.level_widths()[level];
  const uint64_t num_children = 1ull << width;
  if (reader->RemainingBits() < num_children) {
    return Status::InvalidArgument("truncated presence mask");
  }
  const uint64_t mask = reader->ReadBits(static_cast<int>(num_children));
  if (mask == 0) {
    return Status::InvalidArgument("index node without children");
  }
  for (uint64_t d = 0; d < num_children; ++d) {
    if ((mask >> (num_children - 1 - d)) & 1ull) {
      SENSJOIN_RETURN_IF_ERROR(DecodeNode(layout, reader, level + 1,
                                          (prefix << width) | d,
                                          consumed_bits + width, out));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<PointSet> PointSet::Decode(
    std::shared_ptr<const PointSetLayout> layout, const BitWriter& encoded) {
  return Decode(std::move(layout), encoded.bytes().data(),
                encoded.size_bits());
}

StatusOr<PointSet> PointSet::Decode(
    std::shared_ptr<const PointSetLayout> layout, const uint8_t* bytes,
    size_t size_bits) {
  PointSet set(layout);
  if (size_bits == 0) return set;
  BitReader reader(bytes, size_bits);
  SENSJOIN_RETURN_IF_ERROR(
      DecodeNode(*layout, &reader, 0, 0, 0, &set.keys_));
  if (reader.RemainingBits() > 0) {
    return Status::InvalidArgument("trailing bits after point-set encoding");
  }
  for (size_t i = 1; i < set.keys_.size(); ++i) {
    if (set.keys_[i - 1] >= set.keys_[i]) {
      return Status::InvalidArgument("point-set keys not strictly ascending");
    }
  }
  return set;
}

}  // namespace sensjoin::join
