#ifndef SENSJOIN_JOIN_POINT_SET_H_
#define SENSJOIN_JOIN_POINT_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/common/statusor.h"

namespace sensjoin::join {

/// Describes the digit structure of quadtree keys: an optional relation-flag
/// digit (the topmost index node represents the relation flags; Sec. V-C)
/// followed by one digit per Z-order level. A key packs the digits MSB-first:
/// flags, then the interleaved coordinate bits.
class PointSetLayout {
 public:
  /// `flag_bits` is the number of relations (>= 0); `z_level_widths` are the
  /// per-level digit widths of the Z-order (ZOrder::level_widths()).
  PointSetLayout(int flag_bits, std::vector<int> z_level_widths);

  int flag_bits() const { return flag_bits_; }
  int num_levels() const { return static_cast<int>(level_widths_.size()); }
  const std::vector<int>& level_widths() const { return level_widths_; }
  int total_key_bits() const { return total_key_bits_; }

  /// Bits remaining below level `l` (suffix length of a point listed at a
  /// node of that level). SuffixBits(0) == total_key_bits().
  int SuffixBits(int l) const { return suffix_bits_[l]; }

  uint64_t MakeKey(uint8_t flags, uint64_t z) const;
  uint8_t FlagsOfKey(uint64_t key) const;
  uint64_t ZOfKey(uint64_t key) const;

  friend bool operator==(const PointSetLayout& a, const PointSetLayout& b) {
    return a.flag_bits_ == b.flag_bits_ && a.level_widths_ == b.level_widths_;
  }

 private:
  int flag_bits_;
  std::vector<int> level_widths_;  ///< flags digit (if any) + z levels
  std::vector<int> suffix_bits_;   ///< suffix_bits_[l], plus trailing 0
  int total_key_bits_ = 0;
};

/// A set of quantized join-attribute tuples (Join_Attr_Structure). The
/// canonical in-memory form is a sorted, duplicate-free key vector; the wire
/// form is the pointerless region-quadtree bitstring of Fig. 9:
///
///   node      := list | index
///   list      := ('1' suffix-bits)+ '0'        (points relative to the path)
///   index     := '0' presence-mask child-node*  (2^width mask bits)
///
/// The decomposition threshold is cost-based (Sec. V-C "Decomposition
/// threshold"): a node is subdivided exactly when the subdivided encoding is
/// shorter than listing its points, so the encoding of a given set is
/// canonical. Union/Intersect therefore commute with encoding — merging two
/// encodings structurally and merging key vectors produce identical bits —
/// and no general-purpose decompression is ever needed (Sec. V-D).
class PointSet {
 public:
  explicit PointSet(std::shared_ptr<const PointSetLayout> layout);

  /// Builds a set from arbitrary (possibly unsorted, duplicated) keys.
  static PointSet FromKeys(std::shared_ptr<const PointSetLayout> layout,
                           std::vector<uint64_t> keys);

  const PointSetLayout& layout() const { return *layout_; }
  const std::shared_ptr<const PointSetLayout>& layout_ptr() const {
    return layout_;
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  const std::vector<uint64_t>& keys() const { return keys_; }

  /// Inserts one point (InsertJoinAtts).
  void Insert(uint64_t key);

  /// Inserts a batch of (possibly unsorted, duplicated) points in one
  /// sort-and-merge pass instead of one O(n) vector shift per key.
  void InsertAll(std::vector<uint64_t> batch);

  bool Contains(uint64_t key) const;

  /// Set union / intersection (UnionJoinAtts, IntersectJoinAtts). The
  /// operands must share the layout.
  static PointSet Union(const PointSet& a, const PointSet& b);
  static PointSet Intersect(const PointSet& a, const PointSet& b);

  /// Merges `other` into this set without allocating a result PointSet.
  /// `scratch` (optional) receives the previous key buffer, so a caller
  /// folding many sets in a loop recycles one allocation instead of
  /// paying a fresh vector per union — the per-node accumulation path of
  /// the collection phase.
  void UnionInPlace(const PointSet& other,
                    std::vector<uint64_t>* scratch = nullptr);

  /// Serializes to the quadtree bitstring. An empty set encodes to zero
  /// bits.
  BitWriter Encode() const;

  /// Same, into a caller-owned writer (cleared first, backing capacity
  /// kept), so per-node encode loops reuse one scratch buffer.
  void EncodeTo(BitWriter* out) const;

  /// Size of the encoding without materializing it: a bottom-up pass over
  /// the node costs in integer arithmetic. Cached between mutations.
  size_t EncodedBits() const;
  size_t EncodedBytes() const { return (EncodedBits() + 7) / 8; }

  /// Parses an encoding produced by Encode() under `layout`. Fails on
  /// malformed input (overruns, out-of-order points).
  static StatusOr<PointSet> Decode(std::shared_ptr<const PointSetLayout> layout,
                                   const BitWriter& encoded);

  /// Same, over a raw byte span holding `size_bits` bits — the form a
  /// receiver has after reassembling (possibly damaged) fragments. Never
  /// aborts, whatever the bytes contain.
  static StatusOr<PointSet> Decode(std::shared_ptr<const PointSetLayout> layout,
                                   const uint8_t* bytes, size_t size_bits);

  friend bool operator==(const PointSet& a, const PointSet& b) {
    return *a.layout_ == *b.layout_ && a.keys_ == b.keys_;
  }

 private:
  void EncodeNode(size_t begin, size_t end, int level, int consumed_bits,
                  BitWriter* out) const;
  size_t NodeEncodedBits(size_t begin, size_t end, int level,
                         int consumed_bits) const;

  std::shared_ptr<const PointSetLayout> layout_;
  std::vector<uint64_t> keys_;  // sorted, unique
  mutable size_t cached_encoded_bits_ = 0;
  mutable bool cache_valid_ = false;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_POINT_SET_H_
