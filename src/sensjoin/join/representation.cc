#include "sensjoin/join/representation.h"

#include "sensjoin/common/logging.h"
#include "sensjoin/compress/bzip2_like.h"
#include "sensjoin/compress/zlib_like.h"

namespace sensjoin::join {

const char* JoinAttrRepresentationName(JoinAttrRepresentation r) {
  switch (r) {
    case JoinAttrRepresentation::kQuadtree:
      return "quadtree";
    case JoinAttrRepresentation::kRaw:
      return "raw";
    case JoinAttrRepresentation::kZlibLike:
      return "zlib-like";
    case JoinAttrRepresentation::kBzip2Like:
      return "bzip2-like";
  }
  return "unknown";
}

std::vector<uint8_t> SerializePointsRaw(const PointSet& set,
                                        const JoinAttrCodec& codec) {
  std::vector<uint8_t> out;
  out.reserve(set.size() * 2 * codec.quantizer().num_dims());
  for (uint64_t key : set.keys()) {
    for (uint32_t c : codec.KeyCoordinates(key)) {
      SENSJOIN_DCHECK(c < (1u << 16));
      out.push_back(static_cast<uint8_t>(c));
      out.push_back(static_cast<uint8_t>(c >> 8));
    }
  }
  return out;
}

size_t StructureWireBytes(const PointSet& set, const JoinAttrCodec& codec,
                          JoinAttrRepresentation representation) {
  if (set.empty()) return 0;
  switch (representation) {
    case JoinAttrRepresentation::kQuadtree:
      return set.EncodedBytes();
    case JoinAttrRepresentation::kRaw:
      return set.size() * 2 * codec.quantizer().num_dims();
    case JoinAttrRepresentation::kZlibLike:
      return compress::ZlibLikeCompress(SerializePointsRaw(set, codec)).size();
    case JoinAttrRepresentation::kBzip2Like:
      return compress::Bzip2LikeCompress(SerializePointsRaw(set, codec))
          .size();
  }
  SENSJOIN_CHECK(false) << "unknown representation";
  return 0;
}

}  // namespace sensjoin::join
