#include "sensjoin/join/zorder.h"

#include <algorithm>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {

ZOrder::ZOrder(std::vector<int> bits_per_dim)
    : bits_per_dim_(std::move(bits_per_dim)) {
  SENSJOIN_CHECK(!bits_per_dim_.empty());
  for (int b : bits_per_dim_) {
    SENSJOIN_CHECK(b >= 0 && b <= 32) << "coordinate width out of range";
    total_bits_ += b;
    max_bits_ = std::max(max_bits_, b);
  }
  SENSJOIN_CHECK_LE(total_bits_, 62)
      << "Z-number does not fit a 64-bit key with flags";
  level_widths_.reserve(max_bits_);
  for (int l = 0; l < max_bits_; ++l) {
    int width = 0;
    for (int b : bits_per_dim_) {
      if (b > l) ++width;
    }
    level_widths_.push_back(width);
  }
}

uint64_t ZOrder::Interleave(const std::vector<uint32_t>& coords) const {
  SENSJOIN_DCHECK(static_cast<int>(coords.size()) == num_dims());
  uint64_t z = 0;
  for (int l = 0; l < max_bits_; ++l) {
    for (int i = 0; i < num_dims(); ++i) {
      const int b = bits_per_dim_[i];
      if (b <= l) continue;
      SENSJOIN_DCHECK(b == 32 || coords[i] < (1u << b))
          << "coordinate out of range in dim" << i;
      const uint32_t bit = (coords[i] >> (b - 1 - l)) & 1u;
      z = (z << 1) | bit;
    }
  }
  return z;
}

std::vector<uint32_t> ZOrder::Deinterleave(uint64_t z) const {
  std::vector<uint32_t> coords(num_dims(), 0);
  int pos = total_bits_;
  for (int l = 0; l < max_bits_; ++l) {
    for (int i = 0; i < num_dims(); ++i) {
      if (bits_per_dim_[i] <= l) continue;
      --pos;
      const uint32_t bit = static_cast<uint32_t>((z >> pos) & 1u);
      coords[i] = (coords[i] << 1) | bit;
    }
  }
  SENSJOIN_DCHECK(pos == 0);
  return coords;
}

}  // namespace sensjoin::join
