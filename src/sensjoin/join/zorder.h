#ifndef SENSJOIN_JOIN_ZORDER_H_
#define SENSJOIN_JOIN_ZORDER_H_

#include <cstdint>
#include <vector>

namespace sensjoin::join {

/// Z-ordering by bit interleaving over dimensions of unequal bit widths
/// (Sec. V-B, Fig. 6). Interleaving proceeds level by level from the most
/// significant bits: at level l every dimension that still has extent
/// (bits_per_dim > l) contributes one bit, mirroring the region quadtree's
/// halving of every unresolved dimension at each tree level. The resulting
/// per-level digit widths drive the quadtree encoding.
class ZOrder {
 public:
  /// `bits_per_dim[i]` is the coordinate width of dimension i. Total bits
  /// must fit a uint64 key (<= 62, leaving room for relation flags).
  explicit ZOrder(std::vector<int> bits_per_dim);

  int num_dims() const { return static_cast<int>(bits_per_dim_.size()); }
  int total_bits() const { return total_bits_; }
  int num_levels() const { return static_cast<int>(level_widths_.size()); }

  /// Number of bits consumed at trie level `l` (the number of dimensions
  /// still active there). An index node at level l has 2^width children.
  const std::vector<int>& level_widths() const { return level_widths_; }

  /// Interleaves `coords` (one per dimension, within range) into a Z-number.
  uint64_t Interleave(const std::vector<uint32_t>& coords) const;

  /// Recovers per-dimension coordinates from a Z-number.
  std::vector<uint32_t> Deinterleave(uint64_t z) const;

 private:
  std::vector<int> bits_per_dim_;
  std::vector<int> level_widths_;
  int total_bits_ = 0;
  int max_bits_ = 0;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_ZORDER_H_
