#include "sensjoin/join/continuous.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/representation.h"
#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::join {
namespace {

/// A batch of multiset changes: +1 additions and -1 removals per key.
using Delta = std::map<uint64_t, int>;

void Merge(Delta* into, const Delta& from) {
  for (const auto& [key, change] : from) {
    const int v = ((*into)[key] += change);
    if (v == 0) into->erase(key);
  }
}

void Apply(std::map<uint64_t, int>* counts, const Delta& delta) {
  for (const auto& [key, change] : delta) {
    const int v = ((*counts)[key] += change);
    SENSJOIN_CHECK_GE(v, 0) << "multiset underflow for key" << key;
    if (v == 0) counts->erase(key);
  }
}

/// Wire size of a delta: additions and removals as two quadtree structures.
size_t DeltaWireBytes(const Delta& delta, const JoinAttrCodec& codec,
                      JoinAttrRepresentation representation) {
  std::vector<uint64_t> adds;
  std::vector<uint64_t> removes;
  for (const auto& [key, change] : delta) {
    for (int i = 0; i < change; ++i) adds.push_back(key);
    for (int i = 0; i < -change; ++i) removes.push_back(key);
  }
  // Multiplicity beyond one per structure costs a small repeat counter;
  // approximate it by the set sizes (duplicates in one epoch are rare).
  const PointSet add_set = PointSet::FromKeys(codec.layout(), adds);
  const PointSet remove_set = PointSet::FromKeys(codec.layout(), removes);
  return StructureWireBytes(add_set, codec, representation) +
         StructureWireBytes(remove_set, codec, representation);
}

PointSet SetView(const std::map<uint64_t, int>& counts,
                 const JoinAttrCodec& codec) {
  std::vector<uint64_t> keys;
  keys.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    if (count > 0) keys.push_back(key);
  }
  return PointSet::FromKeys(codec.layout(), std::move(keys));
}

std::vector<int> QueryJoinAttrIndices(const query::AnalyzedQuery& q) {
  std::set<int> attrs;
  for (int t = 0; t < q.num_tables(); ++t) {
    attrs.insert(q.table(t).join_attr_indices.begin(),
                 q.table(t).join_attr_indices.end());
  }
  return std::vector<int>(attrs.begin(), attrs.end());
}

}  // namespace

DeltaGroupExecutor::DeltaGroupExecutor(sim::Simulator& sim,
                                       const data::NetworkData& data,
                                       QuantizationConfig quantization,
                                       ProtocolConfig config)
    : sim_(sim),
      data_(data),
      quantization_(std::move(quantization)),
      config_(config) {}

void DeltaGroupExecutor::Reset() {
  bootstrapped_ = false;
  tree_ = nullptr;
  ctx_.reset();
  codec_.reset();
  new_key_.clear();
  new_valid_.clear();
  last_key_.clear();
  last_valid_.clear();
  subtree_counts_.clear();
  base_counts_.clear();
  exited_.clear();
  proxy_of_.clear();
  proxied_at_.clear();
  stored_tuple_.clear();
}

bool DeltaGroupExecutor::SendWithResync(sim::Message msg, size_t* resyncs) {
  bool corrupted = false;
  if (sim_.SendUnicast(msg, &corrupted) && !corrupted) return true;
  if (!config_.enable_phase_recovery) return false;
  // A lost or garbled hop is re-pulled by the receiver (NACK down the hop,
  // re-send from stored state), a bounded number of times. Persistent
  // failures fall through to a full re-collection with tree rebuild — the
  // base multiset is never left silently stale.
  for (int r = 0; r < config_.max_recovery_requests; ++r) {
    if (!sim_.alive(msg.src) || !sim_.alive(msg.dst) ||
        !sim_.radio().LinkUp(msg.src, msg.dst)) {
      return false;  // persistent: needs CTP repair
    }
    sim::Message rereq;
    rereq.src = msg.dst;
    rereq.dst = msg.src;
    rereq.kind = sim::MessageKind::kControl;
    rereq.payload_bytes = 4;  // names the missing delta
    sim_.SendUnicast(rereq);
    ++*resyncs;
    if (obs::kTracingCompiledIn && sim_.tracer() != nullptr &&
        sim_.tracer()->enabled()) {
      sim_.tracer()->Record(obs::EventKind::kRecoveryRequest, sim_.now(),
                            msg.dst, msg.src, msg.kind, /*count=*/1,
                            /*bytes=*/0, /*energy_mj=*/0.0);
    }
    corrupted = false;
    if (sim_.SendUnicast(msg, &corrupted) && !corrupted) return true;
  }
  return false;
}

PointSet DeltaGroupExecutor::CollectedSet() const {
  SENSJOIN_CHECK(codec_ != nullptr) << "CollectedSet before Collect";
  return SetView(base_counts_, *codec_);
}

Status DeltaGroupExecutor::Collect(const net::RoutingTree& tree,
                                   const query::AnalyzedQuery& q,
                                   uint64_t epoch, CollectOutcome* out) {
  *out = CollectOutcome{};
  tree_ = &tree;
  const int n = sim_.num_nodes();
  const sim::NodeId root = tree.root();
  ctx_.emplace(data_, q, epoch);

  if (!bootstrapped_) {
    last_key_.assign(n, 0);
    last_valid_.assign(n, 0);
    subtree_counts_.assign(n, {});
    base_counts_.clear();
    exited_.assign(n, 0);
    proxy_of_.assign(n, sim::kInvalidNode);
    proxied_at_.assign(n, {});
    stored_tuple_.assign(n, std::nullopt);
    const std::vector<int> boot_dims = QueryJoinAttrIndices(q);
    SENSJOIN_ASSIGN_OR_RETURN(
        Quantizer quantizer,
        Quantizer::FromConfig(q.schema(), boot_dims, quantization_));
    codec_ = std::make_unique<JoinAttrCodec>(std::move(quantizer),
                                             ctx_->num_relations());
    out->bootstrap = true;
  }
  const JoinAttrCodec& codec = *codec_;
  const std::vector<int> dims = QueryJoinAttrIndices(q);
  const bool bootstrap = out->bootstrap;

  // New keys for this epoch.
  new_key_.assign(n, 0);
  new_valid_.assign(n, 0);
  std::vector<double> dim_values(dims.size());
  for (sim::NodeId u = 0; u < n; ++u) {
    const ExecutorContext::NodeInfo& info = ctx_->info(u);
    if (!info.has_tuple || !tree.InTree(u) || u == root) continue;
    for (size_t d = 0; d < dims.size(); ++d) {
      dim_values[d] = info.tuple.values[dims[d]];
    }
    new_key_[u] = codec.EncodeTuple(dim_values, info.membership);
    new_valid_[u] = 1;
  }

  obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                        obs::Phase::kJoinAttrCollection);

  // In-flight state of the leaf-to-root walk.
  std::vector<Delta> pending(n);
  std::vector<std::vector<data::Tuple>> pending_tuples(n);
  std::vector<size_t> pending_tuple_bytes(n, 0);
  std::vector<std::vector<sim::NodeId>> pending_tombstones(n);
  std::vector<char> any_attrs_child(n, 0);  // bootstrap Treecut decisions

  // Folds owner `o`'s key change into `own` and advances the last-reported
  // state. Exited owners' changes are folded at their proxy, everyone
  // else's at the node itself.
  auto merge_owner_change = [&](sim::NodeId o, Delta* own) {
    Delta change;
    if (last_valid_[o]) change[last_key_[o]] -= 1;
    if (new_valid_[o]) change[new_key_[o]] += 1;
    for (auto it = change.begin(); it != change.end();) {
      it = it->second == 0 ? change.erase(it) : std::next(it);
    }
    if (!change.empty()) ++out->changed_nodes;
    Merge(own, change);
    last_key_[o] = new_key_[o];
    last_valid_[o] = new_valid_[o];
  };

  auto store_at = [&](sim::NodeId proxy, const data::Tuple& t) {
    if (proxy_of_[t.node] == sim::kInvalidNode) {
      proxy_of_[t.node] = proxy;
      proxied_at_[proxy].push_back(t.node);
    }
    stored_tuple_[t.node] = t;
  };

  // True when an exited node's current content differs from the copy its
  // proxy stores (so the proxy's store — and the exact rows it can produce
  // in the final phase — would go stale without a re-ship).
  auto content_changed = [&](sim::NodeId o) {
    const std::optional<data::Tuple>& stored = stored_tuple_[o];
    if (!new_valid_[o]) return stored.has_value();
    return !stored.has_value() ||
           stored->values != ctx_->info(o).tuple.values;
  };

  for (sim::NodeId u : tree.collection_order()) {
    if (u == root) {
      Delta delta = std::move(pending[u]);
      // The base station acts as proxy for complete tuples that reached it.
      for (const data::Tuple& t : pending_tuples[u]) {
        store_at(u, t);
        merge_owner_change(t.node, &delta);
      }
      for (sim::NodeId o : pending_tombstones[u]) {
        stored_tuple_[o].reset();
        merge_owner_change(o, &delta);
      }
      // Apply to the base multiset, recording the set-level transitions the
      // incremental filter maintenance consumes.
      for (const auto& [key, change] : delta) {
        auto [it, inserted] = base_counts_.try_emplace(key, 0);
        const int before = it->second;
        const int after = (it->second += change);
        SENSJOIN_CHECK_GE(after, 0) << "multiset underflow for key" << key;
        if (before == 0 && after > 0) out->added.push_back(key);
        if (before > 0 && after == 0) out->removed.push_back(key);
        if (after == 0) base_counts_.erase(it);
      }
      break;  // root is last in collection order
    }
    const ExecutorContext::NodeInfo& info = ctx_->info(u);
    const sim::NodeId parent = tree.parent(u);

    if (bootstrap && config_.use_treecut) {
      // Treecut boundary, decided exactly as in the snapshot protocol: a
      // node with no structure-sending child whose accumulated complete
      // tuples fit Dmax ships them up and exits; the first node over the
      // threshold stores them as their proxy.
      const size_t full_bytes =
          (new_valid_[u] ? static_cast<size_t>(info.full_tuple_bytes) : 0) +
          pending_tuple_bytes[u];
      if (!any_attrs_child[u] &&
          full_bytes <= static_cast<size_t>(config_.dmax_bytes)) {
        exited_[u] = 1;
        std::vector<data::Tuple> contribution = std::move(pending_tuples[u]);
        if (new_valid_[u]) contribution.push_back(info.tuple);
        if (contribution.empty()) continue;
        sim::Message msg;
        msg.src = u;
        msg.dst = parent;
        msg.kind = sim::MessageKind::kCollection;
        msg.payload_bytes = full_bytes;
        if (!SendWithResync(msg, &out->resyncs)) {
          out->failed = true;
          return Status::Ok();
        }
        std::vector<data::Tuple>& up = pending_tuples[parent];
        up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                  std::make_move_iterator(contribution.end()));
        pending_tuple_bytes[parent] += full_bytes;
        continue;
      }
    }

    if (!bootstrap && exited_[u]) {
      // Steady-state Treecut: the exited fringe re-ships only content that
      // changed since the proxy stored it (a disappeared tuple travels as a
      // one-byte tombstone). Key changes ride along implicitly — the proxy
      // folds them into its own delta.
      SENSJOIN_DCHECK(pending[u].empty());
      std::vector<data::Tuple> contribution = std::move(pending_tuples[u]);
      size_t bytes = pending_tuple_bytes[u];
      std::vector<sim::NodeId> tombs = std::move(pending_tombstones[u]);
      if (content_changed(u)) {
        if (new_valid_[u]) {
          contribution.push_back(info.tuple);
          bytes += static_cast<size_t>(info.full_tuple_bytes);
        } else {
          tombs.push_back(u);
          bytes += 1;
        }
      }
      if (contribution.empty() && tombs.empty()) continue;
      sim::Message msg;
      msg.src = u;
      msg.dst = parent;
      msg.kind = sim::MessageKind::kCollection;
      msg.payload_bytes = bytes;
      if (!SendWithResync(msg, &out->resyncs)) {
        out->failed = true;
        return Status::Ok();
      }
      std::vector<data::Tuple>& up = pending_tuples[parent];
      up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                std::make_move_iterator(contribution.end()));
      pending_tuple_bytes[parent] += bytes;
      std::vector<sim::NodeId>& ut = pending_tombstones[parent];
      ut.insert(ut.end(), tombs.begin(), tombs.end());
      continue;
    }

    // Non-exited node: the delta protocol. Incremental SubtreeJoinAtts
    // maintenance — the delta from below is exactly the change of this
    // node's descendant multiset.
    Delta delta = std::move(pending[u]);
    Apply(&subtree_counts_[u], delta);

    Delta own;
    for (const data::Tuple& t : pending_tuples[u]) {
      store_at(u, t);
      merge_owner_change(t.node, &own);
    }
    for (sim::NodeId o : pending_tombstones[u]) {
      stored_tuple_[o].reset();
      merge_owner_change(o, &own);
    }
    merge_owner_change(u, &own);
    Merge(&delta, own);

    if (delta.empty()) continue;
    sim::Message msg;
    msg.src = u;
    msg.dst = parent;
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = DeltaWireBytes(delta, codec, config_.representation);
    if (!SendWithResync(msg, &out->resyncs)) {
      out->failed = true;
      return Status::Ok();
    }
    Merge(&pending[parent], delta);
    any_attrs_child[parent] = 1;
  }
  sim_.events().Run();

  out->treecut_exited = static_cast<size_t>(
      std::count(exited_.begin(), exited_.end(), char{1}));
  bootstrapped_ = true;
  return Status::Ok();
}

Status DeltaGroupExecutor::DisseminateAndFinalize(const PointSet& filter,
                                                  FinalOutcome* out) {
  *out = FinalOutcome{};
  SENSJOIN_CHECK(tree_ != nullptr && ctx_.has_value())
      << "DisseminateAndFinalize without a preceding Collect";
  const net::RoutingTree& tree = *tree_;
  const int n = sim_.num_nodes();
  const sim::NodeId root = tree.root();
  const JoinAttrCodec& codec = *codec_;

  // ---- Filter dissemination ----------------------------------------------
  std::vector<PointSet> filter_at(n, codec.EmptySet());
  std::vector<char> got_filter(n, 0);
  filter_at[root] = filter;
  got_filter[root] = 1;
  {
    obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                          obs::Phase::kFilterDissemination);
    for (sim::NodeId u : tree.dissemination_order()) {
      if (!got_filter[u]) continue;
      std::vector<sim::NodeId> targets;
      for (sim::NodeId c : tree.children(u)) {
        // Exited subtrees are answered for by their proxy; everyone else
        // needs the filter only if their subtree ever reported data.
        if (exited_[c]) continue;
        if (!subtree_counts_[c].empty() || last_valid_[c] ||
            !proxied_at_[c].empty()) {
          targets.push_back(c);
        }
      }
      if (targets.empty()) continue;
      const PointSet subtree_view = u == root
                                        ? SetView(base_counts_, codec)
                                        : SetView(subtree_counts_[u], codec);
      PointSet forward = filter_at[u];
      const bool can_prune =
          config_.use_selective_forwarding &&
          (u == root ||
           StructureWireBytes(subtree_view, codec, config_.representation) <=
               static_cast<size_t>(config_.filter_memory_bytes));
      if (can_prune) {
        // Include the children's own keys, which the subtree multiset of u
        // already covers (it aggregates everything reported from below).
        forward = PointSet::Intersect(filter_at[u], subtree_view);
      }
      if (forward.empty()) continue;
      for (sim::NodeId c : targets) {
        if (!sim_.radio().LinkUp(u, c)) {
          out->failed = true;
          return Status::Ok();
        }
      }
      sim::Message msg;
      msg.src = u;
      msg.kind = sim::MessageKind::kFilter;
      msg.payload_bytes =
          StructureWireBytes(forward, codec, config_.representation);
      sim_.Broadcast(std::move(msg));
      for (sim::NodeId c : targets) {
        filter_at[c] = forward;
        got_filter[c] = 1;
      }
    }
    sim_.events().Run();
  }

  // ---- Final result computation ------------------------------------------
  obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                        obs::Phase::kFinalResult);
  std::vector<std::vector<data::Tuple>> pending_final(n);
  for (sim::NodeId u : tree.collection_order()) {
    std::vector<data::Tuple> contribution = std::move(pending_final[u]);
    if (u == root) {
      out->candidates = std::move(contribution);
      // Stored tuples at the base station are already in place; the filter
      // still gates them into the candidate pool (it is conservative, so
      // no true match is lost).
      for (sim::NodeId o : proxied_at_[u]) {
        if (stored_tuple_[o].has_value() && last_valid_[o] &&
            filter.Contains(last_key_[o])) {
          out->candidates.push_back(*stored_tuple_[o]);
        }
      }
      continue;
    }
    if (exited_[u]) {
      SENSJOIN_DCHECK(contribution.empty());
      continue;
    }
    if (got_filter[u]) {
      if (new_valid_[u] && filter_at[u].Contains(new_key_[u])) {
        contribution.push_back(ctx_->info(u).tuple);
        ++out->final_tuples_shipped;
      }
      // Proxy duty: ship stored tuples that match the filter on behalf of
      // the exited fringe.
      for (sim::NodeId o : proxied_at_[u]) {
        if (stored_tuple_[o].has_value() && last_valid_[o] &&
            filter_at[u].Contains(last_key_[o])) {
          contribution.push_back(*stored_tuple_[o]);
          ++out->final_tuples_shipped;
        }
      }
    }
    if (contribution.empty()) continue;
    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx_->info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    if (!SendWithResync(msg, &out->resyncs)) {
      out->failed = true;
      return Status::Ok();
    }
    std::vector<data::Tuple>& up = pending_final[tree.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }
  sim_.events().Run();
  return Status::Ok();
}

ContinuousSensJoinExecutor::ContinuousSensJoinExecutor(
    sim::Simulator& sim, net::RoutingTree tree, const data::NetworkData& data,
    QuantizationConfig quantization, ProtocolConfig config)
    : sim_(sim),
      tree_(std::move(tree)),
      config_(config),
      engine_(sim, data, std::move(quantization), config) {}

StatusOr<ExecutionReport> ContinuousSensJoinExecutor::ExecuteEpoch(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  if (q.num_tables() < 2) {
    return Status::InvalidArgument(
        "SENS-Join requires at least two relations in FROM");
  }
  if (config_.use_treecut &&
      config_.dmax_bytes >= sim_.packet_params().max_packet_bytes) {
    return Status::InvalidArgument(
        "Dmax must be below the maximum packet size (Sec. IV-E)");
  }
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();

    DeltaGroupExecutor::CollectOutcome collected;
    SENSJOIN_RETURN_IF_ERROR(engine_.Collect(tree_, q, epoch, &collected));
    bool failed = collected.failed;
    if (!failed) {
      const PointSet collected_set = engine_.CollectedSet();
      const FilterJoinResult& filter_result =
          filter_.Update(q, *engine_.codec(), collected_set, collected.added,
                         collected.removed);
      report.collected_points = collected_set.size();
      report.filter_points = filter_result.filter.size();
      report.delta_changed_nodes = collected.changed_nodes;
      report.delta_resyncs = collected.resyncs;
      report.treecut_exited_nodes = collected.treecut_exited;

      DeltaGroupExecutor::FinalOutcome fin;
      SENSJOIN_RETURN_IF_ERROR(
          engine_.DisseminateAndFinalize(filter_result.filter, &fin));
      report.delta_resyncs += fin.resyncs;
      failed = fin.failed;
      if (!failed) {
        report.final_tuples_shipped = fin.final_tuples_shipped;
        report.candidate_tuples = fin.candidates.size();
        report.result = ComputeExactJoin(
            q, engine_.context()->PerTableCandidates(fin.candidates));
        report.success = true;
        report.cost = snapshot.DeltaTo(sim_);
        report.response_time_s = sim_.now() - start_time;
        return report;
      }
    }
    // Topology changed mid-execution: the distributed state no longer
    // matches the tree. Repair and bootstrap (a full collection).
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
    engine_.Reset();
    filter_.Reset();
  }
  return Status::ResourceExhausted(
      "continuous SENS-Join failed after retries");
}

}  // namespace sensjoin::join
