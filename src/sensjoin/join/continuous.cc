#include "sensjoin/join/continuous.h"

#include <set>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/representation.h"
#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"

namespace sensjoin::join {
namespace {

/// A batch of multiset changes: +1 additions and -1 removals per key.
using Delta = std::map<uint64_t, int>;

void Merge(Delta* into, const Delta& from) {
  for (const auto& [key, change] : from) {
    const int v = ((*into)[key] += change);
    if (v == 0) into->erase(key);
  }
}

void Apply(std::map<uint64_t, int>* counts, const Delta& delta) {
  for (const auto& [key, change] : delta) {
    const int v = ((*counts)[key] += change);
    SENSJOIN_CHECK_GE(v, 0) << "multiset underflow for key" << key;
    if (v == 0) counts->erase(key);
  }
}

/// Wire size of a delta: additions and removals as two quadtree structures.
size_t DeltaWireBytes(const Delta& delta, const JoinAttrCodec& codec,
                      JoinAttrRepresentation representation) {
  std::vector<uint64_t> adds;
  std::vector<uint64_t> removes;
  for (const auto& [key, change] : delta) {
    for (int i = 0; i < change; ++i) adds.push_back(key);
    for (int i = 0; i < -change; ++i) removes.push_back(key);
  }
  // Multiplicity beyond one per structure costs a small repeat counter;
  // approximate it by the set sizes (duplicates in one epoch are rare).
  const PointSet add_set = PointSet::FromKeys(codec.layout(), adds);
  const PointSet remove_set = PointSet::FromKeys(codec.layout(), removes);
  return StructureWireBytes(add_set, codec, representation) +
         StructureWireBytes(remove_set, codec, representation);
}

PointSet SetView(const std::map<uint64_t, int>& counts,
                 const JoinAttrCodec& codec) {
  std::vector<uint64_t> keys;
  keys.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    if (count > 0) keys.push_back(key);
  }
  return PointSet::FromKeys(codec.layout(), std::move(keys));
}

std::vector<int> QueryJoinAttrIndices(const query::AnalyzedQuery& q) {
  std::set<int> attrs;
  for (int t = 0; t < q.num_tables(); ++t) {
    attrs.insert(q.table(t).join_attr_indices.begin(),
                 q.table(t).join_attr_indices.end());
  }
  return std::vector<int>(attrs.begin(), attrs.end());
}

}  // namespace

ContinuousSensJoinExecutor::ContinuousSensJoinExecutor(
    sim::Simulator& sim, net::RoutingTree tree, const data::NetworkData& data,
    QuantizationConfig quantization, ProtocolConfig config)
    : sim_(sim),
      tree_(std::move(tree)),
      data_(data),
      quantization_(std::move(quantization)),
      config_(config) {}

void ContinuousSensJoinExecutor::ResetDistributedState() {
  bootstrapped_ = false;
  last_key_.assign(sim_.num_nodes(), 0);
  last_valid_.assign(sim_.num_nodes(), 0);
  subtree_counts_.assign(sim_.num_nodes(), {});
  base_counts_.clear();
}

StatusOr<ExecutionReport> ContinuousSensJoinExecutor::ExecuteEpoch(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  if (q.num_tables() < 2) {
    return Status::InvalidArgument(
        "SENS-Join requires at least two relations in FROM");
  }
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();
    bool failed = false;
    SENSJOIN_RETURN_IF_ERROR(ExecuteAttempt(q, epoch, &report, &failed));
    sim_.events().Run();
    if (!failed) {
      report.success = true;
      report.cost = snapshot.DeltaTo(sim_);
      report.response_time_s = sim_.now() - start_time;
      return report;
    }
    // Topology changed mid-execution: the distributed state no longer
    // matches the tree. Repair and bootstrap.
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
    ResetDistributedState();
  }
  return Status::ResourceExhausted(
      "continuous SENS-Join failed after retries");
}

Status ContinuousSensJoinExecutor::ExecuteAttempt(
    const query::AnalyzedQuery& q, uint64_t epoch, ExecutionReport* report,
    bool* failed) {
  *failed = false;
  const int n = sim_.num_nodes();
  const ExecutorContext ctx(data_, q, epoch);

  if (!bootstrapped_) {
    ResetDistributedState();
    const std::vector<int> dims = QueryJoinAttrIndices(q);
    SENSJOIN_ASSIGN_OR_RETURN(
        Quantizer quantizer,
        Quantizer::FromConfig(q.schema(), dims, quantization_));
    codec_ = std::make_unique<JoinAttrCodec>(std::move(quantizer),
                                             ctx.num_relations());
  }
  const JoinAttrCodec& codec = *codec_;
  const std::vector<int> dims = QueryJoinAttrIndices(q);

  // New keys for this epoch.
  std::vector<uint64_t> new_key(n, 0);
  std::vector<char> new_valid(n, 0);
  std::vector<double> dim_values(dims.size());
  for (sim::NodeId u = 0; u < n; ++u) {
    const ExecutorContext::NodeInfo& info = ctx.info(u);
    if (!info.has_tuple || !tree_.InTree(u) || u == tree_.root()) continue;
    for (size_t d = 0; d < dims.size(); ++d) {
      dim_values[d] = info.tuple.values[dims[d]];
    }
    new_key[u] = codec.EncodeTuple(dim_values, info.membership);
    new_valid[u] = 1;
  }

  // ---- Delta collection (leaf to root) -----------------------------------
  std::vector<Delta> pending(n);
  size_t changed_nodes = 0;
  for (sim::NodeId u : tree_.collection_order()) {
    Delta delta = std::move(pending[u]);
    pending[u].clear();
    if (u == tree_.root()) {
      Apply(&base_counts_, delta);
      break;  // root is last in collection order
    }
    // Incremental SubtreeJoinAtts maintenance: the delta from below is
    // exactly the change of this node's descendant multiset.
    Apply(&subtree_counts_[u], delta);

    // Own change.
    Delta own;
    if (last_valid_[u]) own[last_key_[u]] -= 1;
    if (new_valid[u]) own[new_key[u]] += 1;
    // A node whose key did not move contributes nothing.
    for (auto it = own.begin(); it != own.end();) {
      it = it->second == 0 ? own.erase(it) : std::next(it);
    }
    if (!own.empty()) ++changed_nodes;
    Merge(&delta, own);
    last_key_[u] = new_key[u];
    last_valid_[u] = new_valid[u];

    if (delta.empty()) continue;
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = DeltaWireBytes(delta, codec, config_.representation);
    if (!sim_.SendUnicast(std::move(msg))) {
      *failed = true;
      return Status::Ok();
    }
    Merge(&pending[tree_.parent(u)], delta);
  }
  sim_.events().Run();

  // ---- Base station: filter join over the maintained multiset ------------
  const PointSet collected = SetView(base_counts_, codec);
  const FilterJoinResult filter_result =
      ComputeJoinFilter(q, codec, collected);
  report->collected_points = collected.size();
  report->filter_points = filter_result.filter.size();
  report->delta_changed_nodes = changed_nodes;

  // ---- Filter dissemination ----------------------------------------------
  std::vector<PointSet> filter_at(n, codec.EmptySet());
  std::vector<char> got_filter(n, 0);
  filter_at[tree_.root()] = filter_result.filter;
  got_filter[tree_.root()] = 1;
  for (sim::NodeId u : tree_.dissemination_order()) {
    if (!got_filter[u]) continue;
    std::vector<sim::NodeId> targets;
    for (sim::NodeId c : tree_.children(u)) {
      // Only subtrees that ever reported data need the filter.
      if (!subtree_counts_[c].empty() || last_valid_[c]) targets.push_back(c);
    }
    if (targets.empty()) continue;
    const PointSet subtree_view =
        u == tree_.root() ? SetView(base_counts_, codec)
                          : SetView(subtree_counts_[u], codec);
    PointSet forward = filter_at[u];
    const bool can_prune =
        config_.use_selective_forwarding &&
        (u == tree_.root() ||
         StructureWireBytes(subtree_view, codec, config_.representation) <=
             static_cast<size_t>(config_.filter_memory_bytes));
    if (can_prune) {
      // Include the children's own keys, which the subtree multiset of u
      // already covers (it aggregates everything reported from below).
      forward = PointSet::Intersect(filter_at[u], subtree_view);
    }
    if (forward.empty()) continue;
    for (sim::NodeId c : targets) {
      if (!sim_.radio().LinkUp(u, c)) {
        *failed = true;
        return Status::Ok();
      }
    }
    sim::Message msg;
    msg.src = u;
    msg.kind = sim::MessageKind::kFilter;
    msg.payload_bytes =
        StructureWireBytes(forward, codec, config_.representation);
    sim_.Broadcast(std::move(msg));
    for (sim::NodeId c : targets) {
      filter_at[c] = forward;
      got_filter[c] = 1;
    }
  }
  sim_.events().Run();

  // ---- Final result computation ------------------------------------------
  std::vector<std::vector<data::Tuple>> pending_final(n);
  std::vector<data::Tuple> base_candidates;
  for (sim::NodeId u : tree_.collection_order()) {
    std::vector<data::Tuple> contribution = std::move(pending_final[u]);
    if (u != tree_.root() && got_filter[u] && new_valid[u] &&
        filter_at[u].Contains(new_key[u])) {
      contribution.push_back(ctx.info(u).tuple);
      ++report->final_tuples_shipped;
    }
    if (u == tree_.root()) {
      base_candidates = std::move(contribution);
      continue;
    }
    if (contribution.empty()) continue;
    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    if (!sim_.SendUnicast(std::move(msg))) {
      *failed = true;
      return Status::Ok();
    }
    std::vector<data::Tuple>& up = pending_final[tree_.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }
  sim_.events().Run();

  report->candidate_tuples = base_candidates.size();
  report->result =
      ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));
  bootstrapped_ = true;
  return Status::Ok();
}

}  // namespace sensjoin::join
