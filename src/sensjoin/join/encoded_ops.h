#ifndef SENSJOIN_JOIN_ENCODED_OPS_H_
#define SENSJOIN_JOIN_ENCODED_OPS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/common/statusor.h"
#include "sensjoin/join/point_set.h"

namespace sensjoin::join {

/// Operations that work directly on the quadtree wire format, without
/// materializing a PointSet (Sec. V-D: "a strength of our quadtree
/// representation is that Union and Intersect can be computed directly on
/// it; there is no need to recover the original tuples").
///
/// Because the encoding is canonical (the cost-based decomposition depends
/// only on the key set), these functions produce bit-identical output to
/// encoding the result of the corresponding PointSet operation — a property
/// the test suite checks exhaustively.

/// Incremental decoder: yields the keys of an encoding in ascending order
/// without building the whole key vector. Drives the streaming merges and
/// lets memory-constrained nodes iterate a received structure in place.
class EncodedPointStream {
 public:
  EncodedPointStream(const PointSetLayout* layout, const BitWriter* encoded);

  /// The next key, or nullopt at the end. Malformed input is reported
  /// through status() and ends the stream. Accepts exactly the encodings
  /// PointSet::Decode accepts: truncation, trailing bits and out-of-order
  /// keys are all errors, so a corrupted structure cannot slip through the
  /// streaming path while the batch path would reject it.
  std::optional<uint64_t> Next();

  const Status& status() const { return status_; }

 private:
  struct Frame {
    int level;            ///< trie level of this node
    uint64_t prefix;      ///< digits consumed on the path so far
    bool in_list;         ///< currently reading a point list
    uint64_t mask = 0;    ///< remaining-children mask (index nodes)
    uint64_t next_digit = 0;
  };

  /// Enters the node at the reader's position. Returns false on error.
  bool PushNode(int level, uint64_t prefix);

  const PointSetLayout* layout_;
  BitReader reader_;
  std::vector<Frame> stack_;
  Status status_;
  bool done_;
  bool have_last_ = false;
  uint64_t last_key_ = 0;
};

/// Probes an encoding for one key by following its digit path: O(path)
/// index-node hops plus one local list scan — no full decode. This is how a
/// node checks its join-attribute tuple against a received filter.
StatusOr<bool> ContainsEncoded(const PointSetLayout& layout,
                               const BitWriter& encoded, uint64_t key);

/// Union of two encodings, computed by a single co-traversal (streaming
/// merge) of the inputs. Output is the canonical encoding of the union.
StatusOr<BitWriter> UnionEncoded(const PointSetLayout& layout,
                                 const BitWriter& a, const BitWriter& b);

/// Intersection of two encodings; same contract as UnionEncoded.
StatusOr<BitWriter> IntersectEncoded(const PointSetLayout& layout,
                                     const BitWriter& a, const BitWriter& b);

/// Re-encodes an ascending, duplicate-free key sequence under `layout`.
/// The building block the streaming merges feed; exposed for tests.
BitWriter EncodeKeyRange(const PointSetLayout& layout,
                         const std::vector<uint64_t>& keys);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_ENCODED_OPS_H_
