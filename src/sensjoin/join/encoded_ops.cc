#include "sensjoin/join/encoded_ops.h"

#include <algorithm>

#include "sensjoin/common/logging.h"

namespace sensjoin::join {
namespace {

uint64_t LowMask(int bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

}  // namespace

EncodedPointStream::EncodedPointStream(const PointSetLayout* layout,
                                       const BitWriter* encoded)
    : layout_(layout), reader_(*encoded), done_(encoded->size_bits() == 0) {
  if (!done_) {
    if (!PushNode(0, 0)) done_ = true;
  }
}

bool EncodedPointStream::PushNode(int level, uint64_t prefix) {
  if (reader_.RemainingBits() < 1) {
    status_ = Status::InvalidArgument("truncated point-set encoding");
    return false;
  }
  Frame frame;
  frame.level = level;
  frame.prefix = prefix;
  if (reader_.ReadBit()) {
    frame.in_list = true;
  } else {
    if (level >= layout_->num_levels()) {
      status_ = Status::InvalidArgument("index node below the deepest level");
      return false;
    }
    frame.in_list = false;
    const uint64_t num_children = 1ull << layout_->level_widths()[level];
    if (reader_.RemainingBits() < num_children) {
      status_ = Status::InvalidArgument("truncated presence mask");
      return false;
    }
    frame.mask = reader_.ReadBits(static_cast<int>(num_children));
    if (frame.mask == 0) {
      status_ = Status::InvalidArgument("index node without children");
      return false;
    }
  }
  stack_.push_back(frame);
  return true;
}

std::optional<uint64_t> EncodedPointStream::Next() {
  while (!done_ && !stack_.empty()) {
    Frame& top = stack_.back();
    if (top.in_list) {
      const int suffix = layout_->SuffixBits(top.level);
      if (reader_.RemainingBits() < static_cast<size_t>(suffix) + 1) {
        status_ = Status::InvalidArgument("truncated point list");
        done_ = true;
        return std::nullopt;
      }
      const uint64_t key =
          (top.prefix << suffix) | reader_.ReadBits(suffix);
      if (have_last_ && key <= last_key_) {
        status_ = Status::InvalidArgument("point-set keys not strictly ascending");
        done_ = true;
        return std::nullopt;
      }
      have_last_ = true;
      last_key_ = key;
      if (!reader_.ReadBit()) stack_.pop_back();  // end of list
      return key;
    }
    // Index node: descend into the next present child.
    const int width = layout_->level_widths()[top.level];
    const uint64_t num_children = 1ull << width;
    bool descended = false;
    while (top.next_digit < num_children) {
      const uint64_t digit = top.next_digit++;
      if ((top.mask >> (num_children - 1 - digit)) & 1ull) {
        // `top` may dangle after push_back; copy what we need first.
        const int level = top.level;
        const uint64_t prefix = (top.prefix << width) | digit;
        if (!PushNode(level + 1, prefix)) {
          done_ = true;
          return std::nullopt;
        }
        descended = true;
        break;
      }
    }
    if (!descended) stack_.pop_back();
  }
  if (!done_ && status_.ok() && reader_.RemainingBits() > 0) {
    status_ = Status::InvalidArgument("trailing bits after point-set encoding");
  }
  done_ = true;
  return std::nullopt;
}

namespace {

/// Parses and discards the node at the reader's position.
Status SkipNode(const PointSetLayout& layout, BitReader* reader, int level) {
  if (reader->RemainingBits() < 1) {
    return Status::InvalidArgument("truncated point-set encoding");
  }
  if (reader->ReadBit()) {
    const int suffix = layout.SuffixBits(level);
    while (true) {
      if (reader->RemainingBits() < static_cast<size_t>(suffix) + 1) {
        return Status::InvalidArgument("truncated point list");
      }
      reader->ReadBits(suffix);
      if (!reader->ReadBit()) return Status::Ok();
    }
  }
  if (level >= layout.num_levels()) {
    return Status::InvalidArgument("index node below the deepest level");
  }
  const uint64_t num_children = 1ull << layout.level_widths()[level];
  if (reader->RemainingBits() < num_children) {
    return Status::InvalidArgument("truncated presence mask");
  }
  const uint64_t mask = reader->ReadBits(static_cast<int>(num_children));
  for (uint64_t d = 0; d < num_children; ++d) {
    if ((mask >> (num_children - 1 - d)) & 1ull) {
      SENSJOIN_RETURN_IF_ERROR(SkipNode(layout, reader, level + 1));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<bool> ContainsEncoded(const PointSetLayout& layout,
                               const BitWriter& encoded, uint64_t key) {
  if (encoded.size_bits() == 0) return false;
  BitReader reader(encoded);
  int level = 0;
  while (true) {
    if (reader.RemainingBits() < 1) {
      return Status::InvalidArgument("truncated point-set encoding");
    }
    if (reader.ReadBit()) {
      // Point list: suffixes are ascending; scan until >= target.
      const int suffix = layout.SuffixBits(level);
      const uint64_t target = key & LowMask(suffix);
      while (true) {
        if (reader.RemainingBits() < static_cast<size_t>(suffix) + 1) {
          return Status::InvalidArgument("truncated point list");
        }
        const uint64_t v = reader.ReadBits(suffix);
        if (v == target) return true;
        if (v > target || !reader.ReadBit()) return false;
      }
    }
    // Index node: follow the key's digit, skipping earlier siblings.
    if (level >= layout.num_levels()) {
      return Status::InvalidArgument("index node below the deepest level");
    }
    const int width = layout.level_widths()[level];
    const uint64_t num_children = 1ull << width;
    if (reader.RemainingBits() < num_children) {
      return Status::InvalidArgument("truncated presence mask");
    }
    const uint64_t mask = reader.ReadBits(static_cast<int>(num_children));
    const int suffix_below = layout.SuffixBits(level + 1);
    const uint64_t digit =
        (key >> suffix_below) & LowMask(width);
    if (((mask >> (num_children - 1 - digit)) & 1ull) == 0) return false;
    for (uint64_t d = 0; d < digit; ++d) {
      if ((mask >> (num_children - 1 - d)) & 1ull) {
        SENSJOIN_RETURN_IF_ERROR(SkipNode(layout, &reader, level + 1));
      }
    }
    ++level;
  }
}

BitWriter EncodeKeyRange(const PointSetLayout& layout,
                         const std::vector<uint64_t>& keys) {
  // The canonical encoder lives in PointSet; wrap the keys in one.
  auto shared = std::make_shared<const PointSetLayout>(layout);
  return PointSet::FromKeys(shared, keys).Encode();
}

namespace {

StatusOr<BitWriter> MergeEncoded(const PointSetLayout& layout,
                                 const BitWriter& a, const BitWriter& b,
                                 bool intersect) {
  EncodedPointStream sa(&layout, &a);
  EncodedPointStream sb(&layout, &b);
  std::vector<uint64_t> merged;
  std::optional<uint64_t> ka = sa.Next();
  std::optional<uint64_t> kb = sb.Next();
  while (ka.has_value() || kb.has_value()) {
    if (!kb.has_value() || (ka.has_value() && *ka < *kb)) {
      if (!intersect) merged.push_back(*ka);
      ka = sa.Next();
    } else if (!ka.has_value() || *kb < *ka) {
      if (!intersect) merged.push_back(*kb);
      kb = sb.Next();
    } else {
      merged.push_back(*ka);
      ka = sa.Next();
      kb = sb.Next();
    }
  }
  SENSJOIN_RETURN_IF_ERROR(sa.status());
  SENSJOIN_RETURN_IF_ERROR(sb.status());
  return EncodeKeyRange(layout, merged);
}

}  // namespace

StatusOr<BitWriter> UnionEncoded(const PointSetLayout& layout,
                                 const BitWriter& a, const BitWriter& b) {
  return MergeEncoded(layout, a, b, /*intersect=*/false);
}

StatusOr<BitWriter> IntersectEncoded(const PointSetLayout& layout,
                                     const BitWriter& a, const BitWriter& b) {
  return MergeEncoded(layout, a, b, /*intersect=*/true);
}

}  // namespace sensjoin::join
