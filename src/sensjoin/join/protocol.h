#ifndef SENSJOIN_JOIN_PROTOCOL_H_
#define SENSJOIN_JOIN_PROTOCOL_H_

#include <cstdint>

namespace sensjoin::join {

/// How join-attribute tuples are represented on the wire during the
/// pre-computation (Sec. V and the Sec. VI-B comparison).
enum class JoinAttrRepresentation {
  kQuadtree,   ///< the paper's compact quadtree encoding (default)
  kRaw,        ///< plain quantized tuples, two bytes per attribute
               ///< (the SENS_No-Quad variant of Fig. 16)
  kZlibLike,   ///< raw serialization compressed with the LZ77+Huffman codec
  kBzip2Like,  ///< raw serialization compressed with the BWT codec
};

const char* JoinAttrRepresentationName(JoinAttrRepresentation r);

/// Tunables of the SENS-Join protocol. Defaults are the paper's settings.
struct ProtocolConfig {
  /// Treecut threshold Dmax (Sec. IV-B): while the data volume to send is
  /// below this, nodes ship complete tuples instead of join-attribute
  /// tuples. Must stay below the packet payload capacity.
  int dmax_bytes = 30;

  /// Memory budget for Selective Filter Forwarding (Sec. IV-C): a node
  /// keeps its subtree's join-attribute structure only if it fits.
  int filter_memory_bytes = 500;

  /// Ablation switches (both on in the paper's design).
  bool use_treecut = true;
  bool use_selective_forwarding = true;

  JoinAttrRepresentation representation = JoinAttrRepresentation::kQuadtree;

  /// Re-executions after a link failure breaks an execution (Sec. IV-F).
  int max_retries = 3;

  /// Phase-level recovery (extension beyond Sec. IV-F): when a hop send
  /// fails but both endpoints are still alive and the link is up (i.e. the
  /// loss was transient, ARQ budget exhausted), the parent re-requests just
  /// the missing subtree contribution — for Filter-Dissemination from its
  /// stored per-child filter state — instead of re-executing the whole
  /// query. Full re-execution with tree rebuild remains the fallback.
  bool enable_phase_recovery = true;

  /// Re-request rounds per failed hop before falling back to full
  /// re-execution.
  int max_recovery_requests = 2;

  /// Simulated wait before a full re-execution (CTP repair time). Advanced
  /// on the event queue, so crash/recover events scheduled in the fault
  /// plan can fire between attempts. 0 keeps the seed's instant-retry
  /// behavior.
  double retry_backoff_s = 0.0;

  /// Debug/fidelity mode: in the quadtree representation, every structure
  /// handed to the radio is actually serialized to its wire bits and parsed
  /// back, and the roundtrip is checked fatally. Proves the Fig. 9 format
  /// is complete for everything the protocol ships (tests enable this).
  bool verify_wire_roundtrip = false;

  // --- Self-healing routing (all off by default: fault-free runs stay ---
  // --- bit-identical to the seed) ---------------------------------------

  /// In-network tree repair (net/tree_maintenance.h): when a hop send dies
  /// persistently (dead parent or dark link past the ARQ budget), the
  /// stranded node re-attaches its subtree under a live neighbor and the
  /// execution continues, instead of escalating straight to a full
  /// re-execution with a tree rebuild.
  bool enable_tree_repair = false;

  /// Repair-request broadcast rounds per orphan; between rounds the orphan
  /// waits `repair_round_wait_s` of simulated time so scheduled recoveries
  /// can fire.
  int max_repair_rounds = 2;
  double repair_round_wait_s = 0.25;

  /// Graceful degradation: when even repair cannot restore connectivity
  /// (and retries are exhausted or the watchdog expired), the execution
  /// completes over the reachable field and returns a
  /// CompletenessCertificate naming the excluded subtrees, instead of
  /// failing. Off, the legacy abort/retry behavior is kept.
  bool enable_graceful_degradation = false;

  /// Phase watchdogs: each protocol phase gets a sim-time budget of
  /// `watchdog_base_s + tree depth * per-packet latency *
  /// watchdog_per_hop_factor`. Once a phase overruns it (recovery loops,
  /// repeated repairs), the executor stops repairing and degrades (or
  /// aborts the attempt when degradation is off) rather than stalling
  /// unboundedly.
  bool enable_phase_watchdog = false;
  double watchdog_base_s = 1.0;
  double watchdog_per_hop_factor = 64.0;

  // --- Delivery semantics (exactly-once on at-least-once links) ----------
  // Every logical protocol message carries an (attempt id, per-link
  // sequence) tag, and the receive path is idempotent: duplicates are
  // dropped, stale-attempt traffic is rejected, and reordered arrivals are
  // buffered per link. The tag rides in memory, so tagging costs zero wire
  // bytes and zero RNG draws — fault-free runs stay bit-identical to the
  // seed.

  /// Charge the tag's wire size on every tagged message (a real deployment
  /// would pay it; the default keeps frames bit-identical to the seed).
  bool charge_tag_wire_bytes = false;

  /// Wire size of the delivery tag when charged: a 4-byte attempt/epoch id
  /// plus a 2-byte per-link sequence number.
  int tag_wire_bytes = 6;

  /// Per-link dedup window: how many recent sequence numbers a receiver
  /// remembers per (src, dst) link. Arrivals older than the window are
  /// conservatively dropped as duplicates.
  int dedup_window = 64;
};

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_PROTOCOL_H_
