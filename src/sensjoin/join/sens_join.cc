#include "sensjoin/join/sens_join.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/net/tree_maintenance.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/representation.h"
#include "sensjoin/sim/parallel_engine.h"

namespace sensjoin::join {
namespace {

/// Join attributes of the query: the union over all FROM entries, in schema
/// order (Definition 1 — a join-attribute tuple projects onto the join
/// attributes of the query; for self-joins the aliases' attributes usually
/// coincide and are sent once, Sec. IV-B).
std::vector<int> QueryJoinAttrIndices(const query::AnalyzedQuery& q) {
  std::set<int> attrs;
  for (int t = 0; t < q.num_tables(); ++t) {
    attrs.insert(q.table(t).join_attr_indices.begin(),
                 q.table(t).join_attr_indices.end());
  }
  return std::vector<int>(attrs.begin(), attrs.end());
}

}  // namespace

SensJoinExecutor::SensJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                                   const data::NetworkData& data,
                                   QuantizationConfig quantization,
                                   ProtocolConfig config)
    : sim_(sim),
      tree_(std::move(tree)),
      data_(data),
      quantization_(std::move(quantization)),
      config_(config) {}

StatusOr<ExecutionReport> SensJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  if (q.num_tables() < 2) {
    return Status::InvalidArgument(
        "SENS-Join requires at least two relations in FROM");
  }
  if (config_.dmax_bytes >= sim_.packet_params().max_packet_bytes) {
    return Status::InvalidArgument(
        "Dmax must be below the maximum packet size (Sec. IV-E)");
  }
  size_t recovery_requests_total = 0;
  size_t repairs_attempted_total = 0;
  size_t repairs_succeeded_total = 0;
  size_t watchdog_expirations_total = 0;
  const StatsSnapshot execute_snapshot(sim_);

  // Exactly-once validation: every unicast of the execution is stamped with
  // an (attempt, per-link sequence) tag, and every queue-level delivery is
  // fed through the guard. The canonical state application happens inline
  // at send time (the omniscient-driver model), so the handler's verdicts
  // drive counters and trace events, never protocol state — which is what
  // keeps fault-free runs bit-identical to the seed.
  DeliveryGuard guard(
      config_.dedup_window,
      config_.charge_tag_wire_bytes ? config_.tag_wire_bytes : 0,
      sim_.num_nodes());
  auto previous_handler = sim_.SetReceiveHandler(
      [this, &guard](sim::NodeId receiver, const sim::Message& msg) {
        const DeliveryVerdict verdict = guard.Classify(receiver, msg);
        if (verdict == DeliveryVerdict::kStale && obs::kTracingCompiledIn &&
            sim_.tracer() != nullptr && sim_.tracer()->enabled()) {
          sim_.tracer()->Record(obs::EventKind::kStaleDrop, sim_.now(),
                                receiver, msg.src, msg.kind, /*count=*/1,
                                /*bytes=*/0, /*energy_mj=*/0.0,
                                /*detail=*/msg.tag.attempt_id);
        }
      });
  struct HandlerRestore {
    sim::Simulator& sim;
    sim::Simulator::ReceiveHandler previous;
    ~HandlerRestore() { sim.SetReceiveHandler(std::move(previous)); }
  } handler_restore{sim_, std::move(previous_handler)};

  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    guard.BeginAttempt(static_cast<uint32_t>(attempt));
    // In-flight messages captured from an aborted attempt are re-delivered
    // now; the guard classifies them as stale (their attempt id is old).
    sim_.ReleaseReplays();
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();
    bool failed = false;
    SENSJOIN_RETURN_IF_ERROR(ExecuteAttempt(q, epoch, &guard, &report, &failed));
    // Capture still-flying deliveries of an aborted attempt for replay
    // before the drain delivers them normally.
    if (failed) sim_.NotifyAttemptAbort();
    sim_.events().Run();
    if (!failed) {
      report.success = true;
      report.recovery_requests += recovery_requests_total;
      report.repairs_attempted += repairs_attempted_total;
      report.repairs_succeeded += repairs_succeeded_total;
      report.watchdog_expirations += watchdog_expirations_total;
      report.duplicate_deliveries = guard.duplicate_deliveries();
      report.stale_messages_dropped = guard.stale_drops();
      report.reordered_messages = guard.reordered_deliveries();
      SENSJOIN_CHECK_EQ(guard.phantom_deliveries(), 0u)
          << "delivery validator saw a tag that was never stamped";
      report.cost = snapshot.DeltaTo(sim_);
      report.total_cost = execute_snapshot.DeltaTo(sim_);
      report.response_time_s = sim_.now() - start_time;
      return report;
    }
    recovery_requests_total += report.recovery_requests;
    repairs_attempted_total += report.repairs_attempted;
    repairs_succeeded_total += report.repairs_succeeded;
    watchdog_expirations_total += report.watchdog_expirations;
    // Link failure: wait out the CTP repair window (scheduled node
    // recoveries can fire meanwhile), let the tree protocol re-establish
    // routes, and re-execute the query (Sec. IV-F).
    if (config_.retry_backoff_s > 0) {
      sim_.events().RunUntil(sim_.now() + config_.retry_backoff_s);
    }
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
  }
  return Status::ResourceExhausted(
      "SENS-Join failed after retries (network partitioned?)");
}

Status SensJoinExecutor::ExecuteAttempt(const query::AnalyzedQuery& q,
                                        uint64_t epoch, DeliveryGuard* guard,
                                        ExecutionReport* report,
                                        bool* failed) {
  *failed = false;
  const ExecutorContext ctx(data_, q, epoch);

  // Hop delivery with phase-level recovery: when a send fails but both
  // endpoints are alive and the link is up (transient loss that outlasted
  // the ARQ budget), the receiver re-requests just the missing contribution
  // (NACK down the hop) and the sender re-sends from stored state, a
  // bounded number of times. Persistent failures — crashes, downed links —
  // fall through to the full re-execution with tree rebuild.
  //
  // The message is stamped once, before the first send; recovery resends
  // keep the tag (the receiver's dedup window is what makes a resend of a
  // message that did arrive safe). A permanently failed send retracts its
  // tag so the ordering check never waits on a delivery that cannot come.
  auto send_with_recovery = [this, guard, report](
                                sim::Message msg,
                                bool* corrupted = nullptr) -> bool {
    guard->Stamp(msg);
    if (sim_.SendUnicast(msg, corrupted)) return true;
    if (!config_.enable_phase_recovery) {
      guard->Retract(msg);
      return false;
    }
    for (int r = 0; r < config_.max_recovery_requests; ++r) {
      if (!sim_.alive(msg.src) || !sim_.alive(msg.dst) ||
          !sim_.radio().LinkUp(msg.src, msg.dst)) {
        guard->Retract(msg);
        return false;  // persistent: needs CTP repair
      }
      sim::Message rereq;
      rereq.src = msg.dst;
      rereq.dst = msg.src;
      rereq.kind = sim::MessageKind::kControl;
      rereq.payload_bytes = 4;  // names the missing contribution
      guard->Stamp(rereq);
      if (!sim_.SendUnicast(rereq)) guard->Retract(rereq);
      ++report->recovery_requests;
      if (obs::kTracingCompiledIn && sim_.tracer() != nullptr &&
          sim_.tracer()->enabled()) {
        sim_.tracer()->Record(obs::EventKind::kRecoveryRequest, sim_.now(),
                              msg.dst, msg.src, msg.kind, /*count=*/1,
                              /*bytes=*/0, /*energy_mj=*/0.0);
      }
      if (sim_.SendUnicast(msg, corrupted)) return true;
    }
    guard->Retract(msg);
    return false;
  };

  const std::vector<int> dims = QueryJoinAttrIndices(q);
  SENSJOIN_ASSIGN_OR_RETURN(
      Quantizer quantizer,
      Quantizer::FromConfig(q.schema(), dims, quantization_));
  const JoinAttrCodec codec(std::move(quantizer), ctx.num_relations());

  // Per-node join-attribute keys.
  const int n = sim_.num_nodes();
  std::vector<uint64_t> node_key(n, 0);
  std::vector<double> dim_values(dims.size());
  for (sim::NodeId u = 0; u < n; ++u) {
    const ExecutorContext::NodeInfo& info = ctx.info(u);
    if (!info.has_tuple) continue;
    for (size_t d = 0; d < dims.size(); ++d) {
      dim_values[d] = info.tuple.values[dims[d]];
    }
    node_key[u] = codec.EncodeTuple(dim_values, info.membership);
  }

  // Per-node protocol state (Fig. 1).
  struct NodeState {
    std::vector<data::Tuple> pending_full;  ///< full tuples from children
    PointSet pending_attrs;                 ///< union of children structures
    bool any_attrs_child = false;
    bool sent_attrs = false;   ///< sent a join-attribute structure upward
    bool exited = false;       ///< finished via Treecut
    std::vector<data::Tuple> proxy_tuples;  ///< stored complete tuples
    PointSet subtree_attrs;    ///< SubtreeJoinAtts (children only)
    bool has_subtree_attrs = false;
    PointSet filter;           ///< received join filter
    bool got_filter = false;

    explicit NodeState(const JoinAttrCodec& codec)
        : pending_attrs(codec.EmptySet()),
          subtree_attrs(codec.EmptySet()),
          filter(codec.EmptySet()) {}
  };
  std::vector<NodeState> states(n, NodeState(codec));

  const sim::NodeId root = tree_.root();
  std::vector<data::Tuple> base_candidates;

  // Windowed execution: the attempt's partitions are the depth-1 subtrees
  // of the tree it walks. Turn bodies write directly into same-partition
  // state (the parent of a non-depth-1 node is in its own subtree, and its
  // turn runs later on the same worker); anything that crosses a partition
  // boundary — a depth-1 node merging into the base station's pending
  // state, shared report counters — goes through engine.Defer, which the
  // windowed engine commits in turn order at the window barrier and the
  // sequential engine runs inline, so both paths execute the same
  // statements in the same order. Fault-handling branches (rescues,
  // corrupted deliveries, recovery requests) mutate coordinator state
  // directly: they are unreachable inside a parallel window because the
  // engine falls back to sequential whenever any fault machinery is armed
  // (sim::Simulator::WindowSafe).
  sim::ParallelEngine& engine = sim_.engine();
  const sim::PartitionMap parts =
      sim::PartitionMap::FromParents(tree_.parents(), root);

  // --- Self-healing machinery ---------------------------------------------
  // Persistent hop failures escalate in order: phase watchdog (give up on a
  // phase that overran its sim-time budget) -> in-network tree repair
  // (re-attach the stranded subtree and re-route its buffered state) ->
  // graceful degradation (certify the loss and finish over the reachable
  // field). Everything here is inert under the default config, keeping
  // fault-free runs bit-identical to the seed.
  std::set<sim::NodeId> excluded;                // nodes whose data is lost
  std::vector<sim::NodeId> excluded_roots;       // shallowest node per loss
  std::vector<sim::NodeId> repaired_roots;       // re-attached orphans
  std::vector<uint64_t> union_scratch;  // recycled across per-node unions
  std::optional<net::TreeMaintenance> maintenance;
  if (config_.enable_tree_repair) {
    net::TreeMaintenanceConfig mc;
    mc.max_repair_rounds = config_.max_repair_rounds;
    mc.round_wait_s = config_.repair_round_wait_s;
    mc.stamp = [guard](sim::Message& m) { guard->Stamp(m); };
    mc.retract = [guard](const sim::Message& m) { guard->Retract(m); };
    maintenance.emplace(sim_, tree_, mc);
  }

  auto trace_on = [this] {
    return obs::kTracingCompiledIn && sim_.tracer() != nullptr &&
           sim_.tracer()->enabled();
  };

  auto record_exclusion = [&excluded, &excluded_roots](
                              sim::NodeId at,
                              const std::vector<sim::NodeId>& nodes) {
    excluded_roots.push_back(at);
    excluded.insert(nodes.begin(), nodes.end());
  };

  // Admission predicate handed to TreeMaintenance: a new parent must still
  // be in the protocol (Treecut exits left it) and must not forward through
  // a branch whose contribution was already given up on (its path would be
  // silent for the rest of the execution).
  auto repair_parent_ok = [&](sim::NodeId cand) {
    if (states[cand].exited) return false;
    for (sim::NodeId v = cand; v != root; v = tree_.parent(v)) {
      if (excluded.count(v) != 0) return false;
    }
    return true;
  };

  // Phase watchdog: each phase gets a deadline scaled by tree depth; once a
  // phase overruns it, the executor stops repairing and degrades instead of
  // stalling in unbounded recovery loops.
  double phase_deadline = sim::kSimTimeMax;
  auto arm_watchdog = [&] {
    phase_deadline = config_.enable_phase_watchdog
                         ? sim_.now() + config_.watchdog_base_s +
                               tree_.max_depth() * sim_.per_packet_latency_s() *
                                   config_.watchdog_per_hop_factor
                         : sim::kSimTimeMax;
  };
  auto watchdog_expired = [&](obs::Phase phase) {
    if (sim_.now() <= phase_deadline) return false;
    ++report->watchdog_expirations;
    if (trace_on()) {
      sim_.tracer()->Record(obs::EventKind::kDeadlineExpired, sim_.now(), root,
                            sim::kInvalidNode, sim::MessageKind::kControl,
                            /*count=*/0, /*bytes=*/0, /*energy_mj=*/0.0,
                            /*detail=*/static_cast<uint32_t>(phase));
    }
    return true;
  };

  // With the CRC trailer disabled, a delivery can arrive with a damaged
  // payload. For the quadtree wire format the damage is materialized on the
  // actual encoding and run through the hardened decoder: a parseable
  // result is used as-is (wrong but safe); an unparseable one means the
  // receiver discards the structure, like a loss the ARQ missed. Other
  // representations (and full-tuple payloads) have no bit-level wire model,
  // so there a corrupt delivery always drops the contribution.
  auto receive_damaged = [this, &codec,
                          report](const PointSet& sent) -> StatusOr<PointSet> {
    ++report->corrupted_deliveries;
    if (config_.representation != JoinAttrRepresentation::kQuadtree) {
      return Status::InvalidArgument("no wire model for representation");
    }
    return PointSet::Decode(codec.layout(), sim_.DamagePayload(sent.Encode()));
  };

  // Fidelity check (tests): everything handed to the radio must survive an
  // actual serialize/parse roundtrip through the Fig. 9 wire format. The
  // encoding buffer is the per-worker scratch (one buffer per worker, not
  // one per node), so concurrent turns never share it.
  auto verify_wire = [this, &codec](const PointSet& set, BitWriter& scratch) {
    if (!config_.verify_wire_roundtrip ||
        config_.representation != JoinAttrRepresentation::kQuadtree) {
      return;
    }
    set.EncodeTo(&scratch);
    auto decoded = PointSet::Decode(codec.layout(), scratch);
    SENSJOIN_CHECK(decoded.ok()) << decoded.status();
    SENSJOIN_CHECK(*decoded == set) << "wire roundtrip mismatch";
  };

  // One span per protocol phase on the trace timeline; events recorded
  // while a span is open (sends, acks, recovery requests) are attributed to
  // it, which is what trace_summary.py groups the per-phase cost tables by.
  // The optional lets spans cover the flat phase sections below without
  // re-scoping them; early returns close the open span on the way out.
  std::optional<obs::ScopedPhase> span;

  // ---- Phase 1a: Join-Attribute-Collection with Treecut (Fig. 2) --------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kJoinAttrCollection);
  arm_watchdog();
  // Collection-turn flags: set when a node's upward send already happened.
  // Repairs mutate the tree mid-phase, so the traversal iterates a copy of
  // the order snapshot and late contributions are relayed through nodes
  // whose turn has passed.
  std::vector<char> done1a(n, 0);

  // Escalation for a persistent upward-send failure at `u` during
  // collection. `points` carries the subtree's join-attribute keys so a
  // late-merged contribution still reaches the base station's filter;
  // `tuples` holds the complete tuples of a Treecut contribution (empty for
  // structure sends). Returns false only when the attempt must abort.
  auto rescue_collection = [&](sim::NodeId u, const PointSet& points,
                               std::vector<data::Tuple> tuples,
                               size_t tuple_bytes) -> bool {
    const bool treecut = !tuples.empty();
    std::vector<sim::NodeId> tuple_nodes;
    tuple_nodes.reserve(tuples.size());
    for (const data::Tuple& t : tuples) tuple_nodes.push_back(t.node);
    auto degrade = [&]() -> bool {
      if (!config_.enable_graceful_degradation) return false;
      if (treecut) {
        // A Treecut contribution carries exactly these nodes' data.
        record_exclusion(u, tuple_nodes);
      } else {
        // A structure send aggregates the whole subtree: everything at or
        // below u flows through this hop.
        record_exclusion(u, tree_.SubtreeNodes(u));
      }
      return true;
    };
    if (watchdog_expired(obs::Phase::kJoinAttrCollection)) return degrade();
    if (!maintenance) return degrade();
    ++report->repairs_attempted;
    if (!maintenance->Repair(u, repair_parent_ok)) return degrade();
    ++report->repairs_succeeded;
    repaired_roots.push_back(u);

    const sim::NodeId np = tree_.parent(u);
    sim::Message msg;
    msg.src = u;
    msg.dst = np;
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes =
        treecut ? tuple_bytes
                : StructureWireBytes(points, codec, config_.representation);
    bool corrupted = false;
    if (!send_with_recovery(msg, &corrupted)) return degrade();
    if (corrupted) {
      // Damage on the rescued hop: the contribution is lost like any other
      // corrupt delivery (not certificate-tracked; see chaos invariants).
      ++report->corrupted_deliveries;
      return true;
    }
    NodeState& pstate = states[np];
    if (!done1a[np]) {
      // The new parent's collection turn is still to come: hand over the
      // contribution exactly like a regular child would.
      if (treecut) {
        pstate.pending_full.insert(pstate.pending_full.end(),
                                   std::make_move_iterator(tuples.begin()),
                                   std::make_move_iterator(tuples.end()));
      } else {
        pstate.pending_attrs.UnionInPlace(points, &union_scratch);
        pstate.any_attrs_child = true;
      }
      return true;
    }
    // The new parent already took its turn: it stores Treecut tuples as a
    // proxy, and the join-attribute keys are relayed hop by hop through
    // processed ancestors — merging them into each hop's
    // Selective-Filter-Forwarding snapshot so step 1b still prunes
    // correctly — until a node whose turn is still to come buffers them.
    if (treecut) {
      pstate.proxy_tuples.insert(pstate.proxy_tuples.end(),
                                 std::make_move_iterator(tuples.begin()),
                                 std::make_move_iterator(tuples.end()));
    }
    sim::NodeId v = np;
    while (done1a[v] && v != root) {
      NodeState& vs = states[v];
      if (vs.has_subtree_attrs) {
        vs.subtree_attrs.UnionInPlace(points, &union_scratch);
        if (config_.use_selective_forwarding &&
            StructureWireBytes(vs.subtree_attrs, codec,
                               config_.representation) >
                static_cast<size_t>(config_.filter_memory_bytes)) {
          vs.has_subtree_attrs = false;  // grew past budget: stop pruning
        }
      }
      vs.sent_attrs = true;  // v is now part of the upward structure flow
      sim::Message relay;
      relay.src = v;
      relay.dst = tree_.parent(v);
      relay.kind = sim::MessageKind::kCollection;
      relay.payload_bytes =
          StructureWireBytes(points, codec, config_.representation);
      bool relay_corrupted = false;
      if (!send_with_recovery(relay, &relay_corrupted)) return degrade();
      if (relay_corrupted) {
        ++report->corrupted_deliveries;
        return true;
      }
      v = tree_.parent(v);
    }
    states[v].pending_attrs.UnionInPlace(points, &union_scratch);
    states[v].any_attrs_child = true;
    return true;
  };

  const std::vector<sim::NodeId> order_1a = tree_.collection_order();
  engine.RunTurns(parts, order_1a, [&](sim::NodeId u,
                                       sim::ParallelEngine::Scratch& scratch) {
    if (*failed) return;  // a prior turn aborted the attempt
    done1a[u] = 1;
    NodeState& s = states[u];
    const ExecutorContext::NodeInfo& info = ctx.info(u);

    if (u == root) {
      // The base station: complete tuples arriving here are already at
      // their destination; their join-attribute tuples still participate
      // in the filter join as potential partners.
      base_candidates = std::move(s.pending_full);
      std::vector<uint64_t> base_keys;
      base_keys.reserve(base_candidates.size());
      for (const data::Tuple& t : base_candidates) {
        base_keys.push_back(node_key[t.node]);
      }
      s.pending_attrs.InsertAll(std::move(base_keys));
      s.subtree_attrs = s.pending_attrs;  // powered node: no memory limit
      s.has_subtree_attrs = true;
      return;
    }

    size_t full_bytes = info.has_tuple ? info.full_tuple_bytes : 0;
    for (const data::Tuple& t : s.pending_full) {
      full_bytes += ctx.info(t.node).full_tuple_bytes;
    }

    const bool treecut_applies =
        config_.use_treecut && !s.any_attrs_child &&
        full_bytes <= static_cast<size_t>(config_.dmax_bytes);
    if (treecut_applies) {
      // Hand the complete tuples to the parent and exit the query.
      std::vector<data::Tuple> contribution = std::move(s.pending_full);
      if (info.has_tuple) contribution.push_back(info.tuple);
      s.exited = true;
      engine.Defer([report] { ++report->treecut_exited_nodes; });
      if (contribution.empty()) return;
      sim::Message msg;
      msg.src = u;
      msg.dst = tree_.parent(u);
      msg.kind = sim::MessageKind::kCollection;
      msg.payload_bytes = full_bytes;
      bool corrupted = false;
      if (!send_with_recovery(msg, &corrupted)) {
        // Rebuild the contribution's join-attribute keys so a successful
        // rescue can still register them with the base station's filter.
        PointSet keys = codec.EmptySet();
        std::vector<uint64_t> key_list;
        key_list.reserve(contribution.size());
        for (const data::Tuple& t : contribution) {
          key_list.push_back(node_key[t.node]);
        }
        keys.InsertAll(std::move(key_list));
        if (!rescue_collection(u, keys, std::move(contribution), full_bytes)) {
          *failed = true;
        }
        return;
      }
      if (corrupted) {
        // Garbled full tuples are unusable; the subtree's rows are lost.
        ++report->corrupted_deliveries;
        return;
      }
      const sim::NodeId parent = tree_.parent(u);
      if (parts.SamePartition(u, parent)) {
        NodeState& p = states[parent];
        p.pending_full.insert(p.pending_full.end(),
                              std::make_move_iterator(contribution.begin()),
                              std::make_move_iterator(contribution.end()));
      } else {
        engine.Defer([&p = states[parent],
                      contribution = std::move(contribution)]() mutable {
          p.pending_full.insert(p.pending_full.end(),
                                std::make_move_iterator(contribution.begin()),
                                std::make_move_iterator(contribution.end()));
        });
      }
      return;
    }

    // Act as a proxy for received complete tuples; remember the subtree's
    // join-attribute structure for Selective Filter Forwarding.
    s.proxy_tuples = std::move(s.pending_full);
    s.pending_full.clear();
    if (config_.use_selective_forwarding &&
        StructureWireBytes(s.pending_attrs, codec, config_.representation) <=
            static_cast<size_t>(config_.filter_memory_bytes)) {
      s.subtree_attrs = s.pending_attrs;
      s.has_subtree_attrs = true;
    }

    // After this turn u's accumulated structure is only needed as `out`
    // (subtree_attrs already holds its copy when selective forwarding kept
    // one), so hand the buffer over instead of cloning.
    PointSet out = std::move(s.pending_attrs);
    std::vector<uint64_t> local_keys;
    local_keys.reserve(s.proxy_tuples.size() + 1);
    for (const data::Tuple& t : s.proxy_tuples) {
      local_keys.push_back(node_key[t.node]);
    }
    if (info.has_tuple) local_keys.push_back(node_key[u]);
    out.InsertAll(std::move(local_keys));
    if (out.empty()) return;  // nothing in this subtree
    verify_wire(out, scratch.bits);

    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = StructureWireBytes(out, codec, config_.representation);
    bool corrupted = false;
    if (!send_with_recovery(msg, &corrupted)) {
      if (!rescue_collection(u, out, {}, 0)) {
        *failed = true;
        return;
      }
      // A degraded rescue leaves u out of the upward structure flow, so its
      // parent must not expect it as a dissemination target in step 1b.
      if (excluded.count(u) == 0) s.sent_attrs = true;
      return;
    }
    s.sent_attrs = true;
    const sim::NodeId parent = tree_.parent(u);
    if (corrupted) {
      // Fault-only path (sequential by construction).
      auto damaged = receive_damaged(out);
      if (!damaged.ok()) return;  // parent discards the garbled structure
      out = std::move(*damaged);
    }
    if (parts.SamePartition(u, parent)) {
      NodeState& p = states[parent];
      p.pending_attrs.UnionInPlace(out, &scratch.u64);
      p.any_attrs_child = true;
    } else {
      engine.Defer([&p = states[parent], out = std::move(out),
                    &union_scratch]() mutable {
        p.pending_attrs.UnionInPlace(out, &union_scratch);
        p.any_attrs_child = true;
      });
    }
  });
  if (*failed) return Status::Ok();
  sim_.events().Run();
  sim_.events().ShrinkToFit();
  span.reset();

  // ---- Base station: conservative filter join ---------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kBaseStationJoin);
  const PointSet& collected = states[root].pending_attrs;
  const FilterJoinResult filter_result =
      ComputeJoinFilter(q, codec, collected);
  report->collected_points = collected.size();
  report->filter_points = filter_result.filter.size();
  span.reset();

  // ---- Phase 1b: Filter-Dissemination (Fig. 3) ---------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kFilterDissemination);
  arm_watchdog();
  states[root].filter = filter_result.filter;
  states[root].got_filter = true;
  // No in-network repair in this phase: a re-attached child would need its
  // ancestor-pruned filter widened to the new path's subtree, which cannot
  // be reconstructed locally without risking silent row loss. A child that
  // cannot be reached degrades into a certified exclusion instead.
  engine.RunTurns(parts, tree_.dissemination_order(), [&](sim::NodeId u,
                                                          sim::ParallelEngine::
                                                              Scratch&
                                                                  scratch) {
    if (*failed) return;  // a prior turn aborted the attempt
    NodeState& s = states[u];
    if (s.exited || !s.got_filter) return;

    // Every write below lands in u's own subtree (its targets are its
    // children), so partitioned turns never touch foreign state: the root's
    // writes into its depth-1 children happen on its inline turn before the
    // window starts.
    std::vector<sim::NodeId> targets;
    for (sim::NodeId c : tree_.children(u)) {
      if (states[c].sent_attrs) targets.push_back(c);
    }
    if (targets.empty()) return;

    PointSet forward = s.has_subtree_attrs
                           ? PointSet::Intersect(s.filter, s.subtree_attrs)
                           : s.filter;  // over budget: cannot prune
    if (forward.empty()) return;  // subtree holds no result tuples
    verify_wire(forward, scratch.bits);

    sim::Message msg;
    msg.src = u;
    msg.kind = sim::MessageKind::kFilter;
    msg.payload_bytes =
        StructureWireBytes(forward, codec, config_.representation);
    std::vector<sim::NodeId> reached;
    std::vector<sim::NodeId> corrupted_rx;
    sim_.Broadcast(msg, &reached, &corrupted_rx);
    for (sim::NodeId c : targets) {
      bool have = false;
      PointSet child_filter = forward;
      if (std::find(reached.begin(), reached.end(), c) != reached.end()) {
        if (std::find(corrupted_rx.begin(), corrupted_rx.end(), c) !=
            corrupted_rx.end()) {
          auto damaged = receive_damaged(forward);
          if (damaged.ok()) {
            child_filter = std::move(*damaged);
            have = true;
          }
          // Unparseable filter: as good as a missed broadcast — fall
          // through to the unicast resend.
        } else {
          have = true;
        }
      }
      if (!have) {
        if (config_.enable_graceful_degradation &&
            watchdog_expired(obs::Phase::kFilterDissemination)) {
          record_exclusion(c, tree_.SubtreeNodes(c));
          continue;
        }
        // Detected subtree loss: the child missed the filter broadcast.
        // Unicast it the pruned filter kept for exactly this purpose by
        // Selective Filter Forwarding, instead of restarting the query.
        sim::Message resend;
        resend.src = u;
        resend.dst = c;
        resend.kind = sim::MessageKind::kFilter;
        resend.payload_bytes = msg.payload_bytes;
        bool corrupted = false;
        if (!config_.enable_phase_recovery ||
            !send_with_recovery(resend, &corrupted)) {
          if (config_.enable_graceful_degradation) {
            // The filter cannot reach c: its subtree ships nothing in the
            // final phase, so certify the whole branch as excluded.
            record_exclusion(c, tree_.SubtreeNodes(c));
            continue;
          }
          *failed = true;
          return;
        }
        child_filter = forward;
        if (corrupted) {
          auto damaged = receive_damaged(forward);
          // A resend that arrives garbled and unparseable leaves the child
          // without a filter: its subtree ships nothing in phase 2.
          if (!damaged.ok()) continue;
          child_filter = std::move(*damaged);
        }
      }
      states[c].filter = std::move(child_filter);
      states[c].got_filter = true;
    }
  });
  if (*failed) return Status::Ok();
  sim_.events().Run();
  sim_.events().ShrinkToFit();
  span.reset();

  // ---- Phase 2: Final-Result-Computation ---------------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kFinalResult);
  arm_watchdog();
  std::vector<std::vector<data::Tuple>> pending_final(n);
  std::vector<char> done2(n, 0);

  // Escalation for a persistent upward kFinal failure at `u`: repair the
  // tree and re-route the contribution, relaying it hop by hop through
  // already-processed ancestors until a node whose turn is still to come
  // buffers it (the relay path cannot contain Treecut-exited nodes: a
  // non-exited node never has an exited ancestor). Returns false only when
  // the attempt must abort.
  auto rescue_final = [&](sim::NodeId u, std::vector<data::Tuple> contribution,
                          size_t payload) -> bool {
    std::vector<sim::NodeId> lost;
    lost.reserve(contribution.size());
    for (const data::Tuple& t : contribution) lost.push_back(t.node);
    auto degrade = [&]() -> bool {
      if (!config_.enable_graceful_degradation) return false;
      // A final-phase contribution carries exactly these nodes' rows.
      record_exclusion(u, lost);
      return true;
    };
    if (watchdog_expired(obs::Phase::kFinalResult)) return degrade();
    if (!maintenance) return degrade();
    ++report->repairs_attempted;
    if (!maintenance->Repair(u, repair_parent_ok)) return degrade();
    ++report->repairs_succeeded;
    repaired_roots.push_back(u);
    sim::NodeId v = u;
    for (;;) {
      const sim::NodeId dst = tree_.parent(v);
      sim::Message msg;
      msg.src = v;
      msg.dst = dst;
      msg.kind = sim::MessageKind::kFinal;
      msg.payload_bytes = payload;
      bool corrupted = false;
      if (!send_with_recovery(msg, &corrupted)) return degrade();
      if (corrupted) {
        // Garbled result rows are discarded upstream like any other
        // corrupt delivery (the chaos invariants gate exactness on zero
        // corrupted deliveries).
        ++report->corrupted_deliveries;
        return true;
      }
      v = dst;
      if (!done2[v]) break;  // v's turn is still to come: it buffers
    }
    std::vector<data::Tuple>& up = pending_final[v];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
    return true;
  };

  const std::vector<sim::NodeId> order_2 = tree_.collection_order();
  engine.RunTurns(parts, order_2, [&](sim::NodeId u,
                                      sim::ParallelEngine::Scratch&) {
    if (*failed) return;  // a prior turn aborted the attempt
    done2[u] = 1;
    NodeState& s = states[u];
    if (u != root && s.exited) return;

    std::vector<data::Tuple> contribution = std::move(pending_final[u]);
    if (u != root && s.got_filter) {
      const ExecutorContext::NodeInfo& info = ctx.info(u);
      size_t own = 0;
      if (info.has_tuple && s.filter.Contains(node_key[u])) {
        contribution.push_back(info.tuple);
        ++own;
      }
      for (const data::Tuple& t : s.proxy_tuples) {
        if (s.filter.Contains(node_key[t.node])) {
          contribution.push_back(t);
          ++own;
        }
      }
      if (own != 0) {
        engine.Defer([report, own] { report->final_tuples_shipped += own; });
      }
    }
    if (u == root) {
      base_candidates.insert(base_candidates.end(),
                             std::make_move_iterator(contribution.begin()),
                             std::make_move_iterator(contribution.end()));
      return;
    }
    if (contribution.empty()) return;

    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    bool corrupted = false;
    if (!send_with_recovery(msg, &corrupted)) {
      if (!rescue_final(u, std::move(contribution), payload)) {
        *failed = true;
      }
      return;
    }
    if (corrupted) {
      // Garbled result rows are discarded upstream.
      ++report->corrupted_deliveries;
      return;
    }
    const sim::NodeId parent = tree_.parent(u);
    if (parts.SamePartition(u, parent)) {
      std::vector<data::Tuple>& up = pending_final[parent];
      up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                std::make_move_iterator(contribution.end()));
    } else {
      engine.Defer([&up = pending_final[parent],
                    contribution = std::move(contribution)]() mutable {
        up.insert(up.end(), std::make_move_iterator(contribution.begin()),
                  std::make_move_iterator(contribution.end()));
      });
    }
  });
  if (*failed) return Status::Ok();
  sim_.events().Run();
  sim_.events().ShrinkToFit();
  span.reset();

  report->candidate_tuples = base_candidates.size();
  report->result =
      ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));

  // ---- Completeness certificate ------------------------------------------
  // Nodes the routing tree never reached (partitioned field, dead at build
  // time) are counted as excluded even with graceful degradation disabled:
  // their data cannot be in the result and the certificate must say so.
  for (sim::NodeId u : tree_.UnreachableNodes()) {
    if (excluded.insert(u).second) excluded_roots.push_back(u);
  }
  CompletenessCertificate& cert = report->certificate;
  cert.excluded_nodes.assign(excluded.begin(), excluded.end());
  std::sort(excluded_roots.begin(), excluded_roots.end());
  excluded_roots.erase(
      std::unique(excluded_roots.begin(), excluded_roots.end()),
      excluded_roots.end());
  cert.excluded_subtree_roots = std::move(excluded_roots);
  std::sort(repaired_roots.begin(), repaired_roots.end());
  repaired_roots.erase(
      std::unique(repaired_roots.begin(), repaired_roots.end()),
      repaired_roots.end());
  cert.repaired_roots = std::move(repaired_roots);
  cert.total_nodes = n;
  cert.reporting_nodes = n - static_cast<int>(cert.excluded_nodes.size());
  cert.degraded = !cert.excluded_nodes.empty();
  if (cert.degraded && trace_on()) {
    sim_.tracer()->Record(obs::EventKind::kDegradedResult, sim_.now(), root,
                          sim::kInvalidNode, sim::MessageKind::kControl,
                          static_cast<uint32_t>(cert.excluded_nodes.size()),
                          /*bytes=*/0, /*energy_mj=*/0.0);
  }
  return Status::Ok();
}

}  // namespace sensjoin::join
