#include "sensjoin/join/sens_join.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/representation.h"

namespace sensjoin::join {
namespace {

/// Join attributes of the query: the union over all FROM entries, in schema
/// order (Definition 1 — a join-attribute tuple projects onto the join
/// attributes of the query; for self-joins the aliases' attributes usually
/// coincide and are sent once, Sec. IV-B).
std::vector<int> QueryJoinAttrIndices(const query::AnalyzedQuery& q) {
  std::set<int> attrs;
  for (int t = 0; t < q.num_tables(); ++t) {
    attrs.insert(q.table(t).join_attr_indices.begin(),
                 q.table(t).join_attr_indices.end());
  }
  return std::vector<int>(attrs.begin(), attrs.end());
}

}  // namespace

SensJoinExecutor::SensJoinExecutor(sim::Simulator& sim, net::RoutingTree tree,
                                   const data::NetworkData& data,
                                   QuantizationConfig quantization,
                                   ProtocolConfig config)
    : sim_(sim),
      tree_(std::move(tree)),
      data_(data),
      quantization_(std::move(quantization)),
      config_(config) {}

StatusOr<ExecutionReport> SensJoinExecutor::Execute(
    const query::AnalyzedQuery& q, uint64_t epoch) {
  if (q.num_tables() < 2) {
    return Status::InvalidArgument(
        "SENS-Join requires at least two relations in FROM");
  }
  if (config_.dmax_bytes >= sim_.packet_params().max_packet_bytes) {
    return Status::InvalidArgument(
        "Dmax must be below the maximum packet size (Sec. IV-E)");
  }
  size_t recovery_requests_total = 0;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ExecutionReport report;
    report.attempts = attempt + 1;
    const StatsSnapshot snapshot(sim_);
    const double start_time = sim_.now();
    bool failed = false;
    SENSJOIN_RETURN_IF_ERROR(ExecuteAttempt(q, epoch, &report, &failed));
    sim_.events().Run();
    if (!failed) {
      report.success = true;
      report.recovery_requests += recovery_requests_total;
      report.cost = snapshot.DeltaTo(sim_);
      report.response_time_s = sim_.now() - start_time;
      return report;
    }
    recovery_requests_total += report.recovery_requests;
    // Link failure: wait out the CTP repair window (scheduled node
    // recoveries can fire meanwhile), let the tree protocol re-establish
    // routes, and re-execute the query (Sec. IV-F).
    if (config_.retry_backoff_s > 0) {
      sim_.events().RunUntil(sim_.now() + config_.retry_backoff_s);
    }
    tree_ = net::RoutingTree::Build(sim_, tree_.root());
  }
  return Status::ResourceExhausted(
      "SENS-Join failed after retries (network partitioned?)");
}

Status SensJoinExecutor::ExecuteAttempt(const query::AnalyzedQuery& q,
                                        uint64_t epoch,
                                        ExecutionReport* report,
                                        bool* failed) {
  *failed = false;
  const ExecutorContext ctx(data_, q, epoch);

  // Hop delivery with phase-level recovery: when a send fails but both
  // endpoints are alive and the link is up (transient loss that outlasted
  // the ARQ budget), the receiver re-requests just the missing contribution
  // (NACK down the hop) and the sender re-sends from stored state, a
  // bounded number of times. Persistent failures — crashes, downed links —
  // fall through to the full re-execution with tree rebuild.
  auto send_with_recovery = [this, report](const sim::Message& msg,
                                           bool* corrupted = nullptr) -> bool {
    if (sim_.SendUnicast(msg, corrupted)) return true;
    if (!config_.enable_phase_recovery) return false;
    for (int r = 0; r < config_.max_recovery_requests; ++r) {
      if (!sim_.node(msg.src).alive || !sim_.node(msg.dst).alive ||
          !sim_.radio().LinkUp(msg.src, msg.dst)) {
        return false;  // persistent: needs CTP repair
      }
      sim::Message rereq;
      rereq.src = msg.dst;
      rereq.dst = msg.src;
      rereq.kind = sim::MessageKind::kControl;
      rereq.payload_bytes = 4;  // names the missing contribution
      sim_.SendUnicast(std::move(rereq));
      ++report->recovery_requests;
      if (obs::kTracingCompiledIn && sim_.tracer() != nullptr &&
          sim_.tracer()->enabled()) {
        sim_.tracer()->Record(obs::EventKind::kRecoveryRequest, sim_.now(),
                              msg.dst, msg.src, msg.kind, /*count=*/1,
                              /*bytes=*/0, /*energy_mj=*/0.0);
      }
      if (sim_.SendUnicast(msg, corrupted)) return true;
    }
    return false;
  };

  const std::vector<int> dims = QueryJoinAttrIndices(q);
  SENSJOIN_ASSIGN_OR_RETURN(
      Quantizer quantizer,
      Quantizer::FromConfig(q.schema(), dims, quantization_));
  const JoinAttrCodec codec(std::move(quantizer), ctx.num_relations());

  // Per-node join-attribute keys.
  const int n = sim_.num_nodes();
  std::vector<uint64_t> node_key(n, 0);
  std::vector<double> dim_values(dims.size());
  for (sim::NodeId u = 0; u < n; ++u) {
    const ExecutorContext::NodeInfo& info = ctx.info(u);
    if (!info.has_tuple) continue;
    for (size_t d = 0; d < dims.size(); ++d) {
      dim_values[d] = info.tuple.values[dims[d]];
    }
    node_key[u] = codec.EncodeTuple(dim_values, info.membership);
  }

  // Per-node protocol state (Fig. 1).
  struct NodeState {
    std::vector<data::Tuple> pending_full;  ///< full tuples from children
    PointSet pending_attrs;                 ///< union of children structures
    bool any_attrs_child = false;
    bool sent_attrs = false;   ///< sent a join-attribute structure upward
    bool exited = false;       ///< finished via Treecut
    std::vector<data::Tuple> proxy_tuples;  ///< stored complete tuples
    PointSet subtree_attrs;    ///< SubtreeJoinAtts (children only)
    bool has_subtree_attrs = false;
    PointSet filter;           ///< received join filter
    bool got_filter = false;

    explicit NodeState(const JoinAttrCodec& codec)
        : pending_attrs(codec.EmptySet()),
          subtree_attrs(codec.EmptySet()),
          filter(codec.EmptySet()) {}
  };
  std::vector<NodeState> states(n, NodeState(codec));

  const sim::NodeId root = tree_.root();
  std::vector<data::Tuple> base_candidates;

  // With the CRC trailer disabled, a delivery can arrive with a damaged
  // payload. For the quadtree wire format the damage is materialized on the
  // actual encoding and run through the hardened decoder: a parseable
  // result is used as-is (wrong but safe); an unparseable one means the
  // receiver discards the structure, like a loss the ARQ missed. Other
  // representations (and full-tuple payloads) have no bit-level wire model,
  // so there a corrupt delivery always drops the contribution.
  auto receive_damaged = [this, &codec,
                          report](const PointSet& sent) -> StatusOr<PointSet> {
    ++report->corrupted_deliveries;
    if (config_.representation != JoinAttrRepresentation::kQuadtree) {
      return Status::InvalidArgument("no wire model for representation");
    }
    return PointSet::Decode(codec.layout(), sim_.DamagePayload(sent.Encode()));
  };

  // Fidelity check (tests): everything handed to the radio must survive an
  // actual serialize/parse roundtrip through the Fig. 9 wire format.
  auto verify_wire = [this, &codec,
                      scratch = BitWriter{}](const PointSet& set) mutable {
    if (!config_.verify_wire_roundtrip ||
        config_.representation != JoinAttrRepresentation::kQuadtree) {
      return;
    }
    set.EncodeTo(&scratch);  // one encoding buffer across all nodes
    auto decoded = PointSet::Decode(codec.layout(), scratch);
    SENSJOIN_CHECK(decoded.ok()) << decoded.status();
    SENSJOIN_CHECK(*decoded == set) << "wire roundtrip mismatch";
  };

  // One span per protocol phase on the trace timeline; events recorded
  // while a span is open (sends, acks, recovery requests) are attributed to
  // it, which is what trace_summary.py groups the per-phase cost tables by.
  // The optional lets spans cover the flat phase sections below without
  // re-scoping them; early returns close the open span on the way out.
  std::optional<obs::ScopedPhase> span;

  // ---- Phase 1a: Join-Attribute-Collection with Treecut (Fig. 2) --------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kJoinAttrCollection);
  std::vector<uint64_t> union_scratch;  // recycled across per-node unions
  for (sim::NodeId u : tree_.collection_order()) {
    NodeState& s = states[u];
    const ExecutorContext::NodeInfo& info = ctx.info(u);

    if (u == root) {
      // The base station: complete tuples arriving here are already at
      // their destination; their join-attribute tuples still participate
      // in the filter join as potential partners.
      base_candidates = std::move(s.pending_full);
      std::vector<uint64_t> base_keys;
      base_keys.reserve(base_candidates.size());
      for (const data::Tuple& t : base_candidates) {
        base_keys.push_back(node_key[t.node]);
      }
      s.pending_attrs.InsertAll(std::move(base_keys));
      s.subtree_attrs = s.pending_attrs;  // powered node: no memory limit
      s.has_subtree_attrs = true;
      continue;
    }

    size_t full_bytes = info.has_tuple ? info.full_tuple_bytes : 0;
    for (const data::Tuple& t : s.pending_full) {
      full_bytes += ctx.info(t.node).full_tuple_bytes;
    }

    const bool treecut_applies =
        config_.use_treecut && !s.any_attrs_child &&
        full_bytes <= static_cast<size_t>(config_.dmax_bytes);
    if (treecut_applies) {
      // Hand the complete tuples to the parent and exit the query.
      std::vector<data::Tuple> contribution = std::move(s.pending_full);
      if (info.has_tuple) contribution.push_back(info.tuple);
      s.exited = true;
      ++report->treecut_exited_nodes;
      if (contribution.empty()) continue;
      sim::Message msg;
      msg.src = u;
      msg.dst = tree_.parent(u);
      msg.kind = sim::MessageKind::kCollection;
      msg.payload_bytes = full_bytes;
      bool corrupted = false;
      if (!send_with_recovery(msg, &corrupted)) {
        *failed = true;
        return Status::Ok();
      }
      if (corrupted) {
        // Garbled full tuples are unusable; the subtree's rows are lost.
        ++report->corrupted_deliveries;
        continue;
      }
      NodeState& p = states[tree_.parent(u)];
      p.pending_full.insert(p.pending_full.end(),
                            std::make_move_iterator(contribution.begin()),
                            std::make_move_iterator(contribution.end()));
      continue;
    }

    // Act as a proxy for received complete tuples; remember the subtree's
    // join-attribute structure for Selective Filter Forwarding.
    s.proxy_tuples = std::move(s.pending_full);
    s.pending_full.clear();
    if (config_.use_selective_forwarding &&
        StructureWireBytes(s.pending_attrs, codec, config_.representation) <=
            static_cast<size_t>(config_.filter_memory_bytes)) {
      s.subtree_attrs = s.pending_attrs;
      s.has_subtree_attrs = true;
    }

    // After this iteration u's accumulated structure is only needed as
    // `out` (subtree_attrs already holds its copy when selective
    // forwarding kept one), so hand the buffer over instead of cloning.
    PointSet out = std::move(s.pending_attrs);
    std::vector<uint64_t> local_keys;
    local_keys.reserve(s.proxy_tuples.size() + 1);
    for (const data::Tuple& t : s.proxy_tuples) {
      local_keys.push_back(node_key[t.node]);
    }
    if (info.has_tuple) local_keys.push_back(node_key[u]);
    out.InsertAll(std::move(local_keys));
    if (out.empty()) continue;  // nothing in this subtree
    verify_wire(out);

    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kCollection;
    msg.payload_bytes = StructureWireBytes(out, codec, config_.representation);
    bool corrupted = false;
    if (!send_with_recovery(msg, &corrupted)) {
      *failed = true;
      return Status::Ok();
    }
    s.sent_attrs = true;
    NodeState& p = states[tree_.parent(u)];
    if (corrupted) {
      auto damaged = receive_damaged(out);
      if (!damaged.ok()) continue;  // parent discards the garbled structure
      p.pending_attrs.UnionInPlace(*damaged, &union_scratch);
    } else {
      p.pending_attrs.UnionInPlace(out, &union_scratch);
    }
    p.any_attrs_child = true;
  }
  sim_.events().Run();
  span.reset();

  // ---- Base station: conservative filter join ---------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kBaseStationJoin);
  const PointSet& collected = states[root].pending_attrs;
  const FilterJoinResult filter_result =
      ComputeJoinFilter(q, codec, collected);
  report->collected_points = collected.size();
  report->filter_points = filter_result.filter.size();
  span.reset();

  // ---- Phase 1b: Filter-Dissemination (Fig. 3) ---------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kFilterDissemination);
  states[root].filter = filter_result.filter;
  states[root].got_filter = true;
  for (sim::NodeId u : tree_.dissemination_order()) {
    NodeState& s = states[u];
    if (s.exited || !s.got_filter) continue;

    std::vector<sim::NodeId> targets;
    for (sim::NodeId c : tree_.children(u)) {
      if (states[c].sent_attrs) targets.push_back(c);
    }
    if (targets.empty()) continue;

    PointSet forward = s.has_subtree_attrs
                           ? PointSet::Intersect(s.filter, s.subtree_attrs)
                           : s.filter;  // over budget: cannot prune
    if (forward.empty()) continue;  // subtree holds no result tuples
    verify_wire(forward);

    sim::Message msg;
    msg.src = u;
    msg.kind = sim::MessageKind::kFilter;
    msg.payload_bytes =
        StructureWireBytes(forward, codec, config_.representation);
    std::vector<sim::NodeId> reached;
    std::vector<sim::NodeId> corrupted_rx;
    sim_.Broadcast(msg, &reached, &corrupted_rx);
    for (sim::NodeId c : targets) {
      bool have = false;
      PointSet child_filter = forward;
      if (std::find(reached.begin(), reached.end(), c) != reached.end()) {
        if (std::find(corrupted_rx.begin(), corrupted_rx.end(), c) !=
            corrupted_rx.end()) {
          auto damaged = receive_damaged(forward);
          if (damaged.ok()) {
            child_filter = std::move(*damaged);
            have = true;
          }
          // Unparseable filter: as good as a missed broadcast — fall
          // through to the unicast resend.
        } else {
          have = true;
        }
      }
      if (!have) {
        // Detected subtree loss: the child missed the filter broadcast.
        // Unicast it the pruned filter kept for exactly this purpose by
        // Selective Filter Forwarding, instead of restarting the query.
        sim::Message resend;
        resend.src = u;
        resend.dst = c;
        resend.kind = sim::MessageKind::kFilter;
        resend.payload_bytes = msg.payload_bytes;
        bool corrupted = false;
        if (!config_.enable_phase_recovery ||
            !send_with_recovery(resend, &corrupted)) {
          *failed = true;
          return Status::Ok();
        }
        child_filter = forward;
        if (corrupted) {
          auto damaged = receive_damaged(forward);
          // A resend that arrives garbled and unparseable leaves the child
          // without a filter: its subtree ships nothing in phase 2.
          if (!damaged.ok()) continue;
          child_filter = std::move(*damaged);
        }
      }
      states[c].filter = std::move(child_filter);
      states[c].got_filter = true;
    }
  }
  sim_.events().Run();
  span.reset();

  // ---- Phase 2: Final-Result-Computation ---------------------------------
  span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kFinalResult);
  std::vector<std::vector<data::Tuple>> pending_final(n);
  for (sim::NodeId u : tree_.collection_order()) {
    NodeState& s = states[u];
    if (u != root && s.exited) continue;

    std::vector<data::Tuple> contribution = std::move(pending_final[u]);
    if (u != root && s.got_filter) {
      const ExecutorContext::NodeInfo& info = ctx.info(u);
      size_t own = 0;
      if (info.has_tuple && s.filter.Contains(node_key[u])) {
        contribution.push_back(info.tuple);
        ++own;
      }
      for (const data::Tuple& t : s.proxy_tuples) {
        if (s.filter.Contains(node_key[t.node])) {
          contribution.push_back(t);
          ++own;
        }
      }
      report->final_tuples_shipped += own;
    }
    if (u == root) {
      base_candidates.insert(base_candidates.end(),
                             std::make_move_iterator(contribution.begin()),
                             std::make_move_iterator(contribution.end()));
      continue;
    }
    if (contribution.empty()) continue;

    size_t payload = 0;
    for (const data::Tuple& t : contribution) {
      payload += ctx.info(t.node).full_tuple_bytes;
    }
    sim::Message msg;
    msg.src = u;
    msg.dst = tree_.parent(u);
    msg.kind = sim::MessageKind::kFinal;
    msg.payload_bytes = payload;
    bool corrupted = false;
    if (!send_with_recovery(msg, &corrupted)) {
      *failed = true;
      return Status::Ok();
    }
    if (corrupted) {
      // Garbled result rows are discarded upstream.
      ++report->corrupted_deliveries;
      continue;
    }
    std::vector<data::Tuple>& up = pending_final[tree_.parent(u)];
    up.insert(up.end(), std::make_move_iterator(contribution.begin()),
              std::make_move_iterator(contribution.end()));
  }
  sim_.events().Run();
  span.reset();

  report->candidate_tuples = base_candidates.size();
  report->result =
      ComputeExactJoin(q, ctx.PerTableCandidates(base_candidates));
  return Status::Ok();
}

}  // namespace sensjoin::join
