#ifndef SENSJOIN_JOIN_PLANNER_H_
#define SENSJOIN_JOIN_PLANNER_H_

#include <vector>

#include "sensjoin/net/routing_tree.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::join {

/// Which executor the planner recommends.
enum class JoinMethod { kSensJoin, kExternalJoin };

const char* JoinMethodName(JoinMethod m);

/// Inputs of the analytic cost model. Byte sizes come from the analyzed
/// query; `expected_fraction` is the caller's estimate of the fraction of
/// nodes in the result (from history, statistics, or a guess — the paper's
/// break-even analysis shows the decision is robust except near the
/// crossover).
struct PlannerParams {
  int full_tuple_bytes = 0;      ///< shipped projection per tuple
  int join_attr_raw_bytes = 0;   ///< raw join-attribute tuple size
  double quadtree_ratio = 0.45;  ///< encoded/raw size ratio estimate
  double expected_fraction = 0.05;
  int payload_capacity = 40;     ///< packet payload bytes
  int dmax_bytes = 30;           ///< Treecut threshold
};

/// Predicted packet transmissions per method and per SENS-Join phase.
struct PlanEstimate {
  double external = 0;
  double collection = 0;
  double filter = 0;
  double final_phase = 0;

  double sens() const { return collection + filter + final_phase; }

  JoinMethod Choice() const {
    return sens() <= external ? JoinMethod::kSensJoin
                              : JoinMethod::kExternalJoin;
  }
};

/// Walks the routing tree once and predicts the transmission counts of both
/// methods. `participates[u]` marks nodes contributing a tuple. The model:
///
///  * external join: every node forwards its subtree's tuples —
///    ceil(T_u * b / C) packets per node with T_u participants below it;
///  * SENS-Join collection: Treecut ships complete tuples while
///    T_u * b <= Dmax, compact join-attribute structures afterwards;
///  * filter / final phases: a subtree is involved with probability
///    1 - (1-f)^{T_u} and carries f * T_u expected result tuples.
PlanEstimate EstimatePlan(const net::RoutingTree& tree,
                          const std::vector<char>& participates,
                          const PlannerParams& params);

/// Convenience: EstimatePlan(...).Choice().
JoinMethod ChoosePlan(const net::RoutingTree& tree,
                      const std::vector<char>& participates,
                      const PlannerParams& params);

}  // namespace sensjoin::join

#endif  // SENSJOIN_JOIN_PLANNER_H_
