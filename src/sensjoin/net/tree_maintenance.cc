#include "sensjoin/net/tree_maintenance.h"

#include <limits>
#include <utility>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/logging.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::net {
namespace {

/// First wire byte of every repair request; garbage frames (and frames of
/// other protocols misrouted here) fail fast on it.
constexpr uint64_t kRepairMagic = 0xA7;

constexpr uint64_t kNodeSentinel = 0xFFFF;  ///< wire form of kInvalidNode
constexpr uint64_t kHopsSentinel = 0xFF;    ///< wire form of hops == -1

/// Reply payload: the candidate's hop count fits one byte, padded to two
/// for the node id echo (content stays in-memory; only the size is wire).
constexpr size_t kRepairReplyBytes = 2;

struct RepairReply {
  sim::NodeId candidate = sim::kInvalidNode;
  int hops = -1;
};

bool TraceOn(const sim::Simulator& sim) {
  return obs::kTracingCompiledIn && sim.tracer() != nullptr &&
         sim.tracer()->enabled();
}

}  // namespace

BitWriter EncodeRepairRequest(const RepairRequest& req) {
  SENSJOIN_CHECK(req.orphan >= 0 && req.orphan < static_cast<int>(kNodeSentinel));
  SENSJOIN_CHECK(req.dead_parent == sim::kInvalidNode ||
                 (req.dead_parent >= 0 &&
                  req.dead_parent < static_cast<int>(kNodeSentinel)));
  SENSJOIN_CHECK(req.old_hops >= -1 &&
                 req.old_hops < static_cast<int>(kHopsSentinel));
  SENSJOIN_CHECK(req.round >= 0 && req.round <= 0xFF);
  BitWriter w;
  w.WriteBits(kRepairMagic, 8);
  w.WriteBits(static_cast<uint64_t>(req.orphan), 16);
  w.WriteBits(req.dead_parent == sim::kInvalidNode
                  ? kNodeSentinel
                  : static_cast<uint64_t>(req.dead_parent),
              16);
  w.WriteBits(req.old_hops < 0 ? kHopsSentinel
                               : static_cast<uint64_t>(req.old_hops),
              8);
  w.WriteBits(static_cast<uint64_t>(req.round), 8);
  SENSJOIN_CHECK_EQ(w.size_bytes(), kRepairRequestBytes);
  return w;
}

Status DecodeRepairRequest(const uint8_t* bytes, size_t size_bits,
                           int num_nodes, RepairRequest* out) {
  if (size_bits != kRepairRequestBytes * 8) {
    return Status::InvalidArgument("repair request: wrong size");
  }
  BitReader r(bytes, size_bits);
  uint64_t magic = 0, orphan = 0, dead_parent = 0, old_hops = 0, round = 0;
  SENSJOIN_RETURN_IF_ERROR(r.TryReadBits(8, &magic));
  if (magic != kRepairMagic) {
    return Status::InvalidArgument("repair request: bad magic");
  }
  SENSJOIN_RETURN_IF_ERROR(r.TryReadBits(16, &orphan));
  SENSJOIN_RETURN_IF_ERROR(r.TryReadBits(16, &dead_parent));
  SENSJOIN_RETURN_IF_ERROR(r.TryReadBits(8, &old_hops));
  SENSJOIN_RETURN_IF_ERROR(r.TryReadBits(8, &round));
  if (orphan == kNodeSentinel) {
    return Status::InvalidArgument("repair request: orphan id is sentinel");
  }
  if (orphan == dead_parent) {
    return Status::InvalidArgument("repair request: orphan is its own parent");
  }
  if (num_nodes > 0) {
    if (orphan >= static_cast<uint64_t>(num_nodes)) {
      return Status::OutOfRange("repair request: orphan id out of range");
    }
    if (dead_parent != kNodeSentinel &&
        dead_parent >= static_cast<uint64_t>(num_nodes)) {
      return Status::OutOfRange("repair request: parent id out of range");
    }
    if (old_hops != kHopsSentinel &&
        old_hops >= static_cast<uint64_t>(num_nodes)) {
      return Status::OutOfRange("repair request: hop count out of range");
    }
  }
  out->orphan = static_cast<sim::NodeId>(orphan);
  out->dead_parent = dead_parent == kNodeSentinel
                         ? sim::kInvalidNode
                         : static_cast<sim::NodeId>(dead_parent);
  out->old_hops =
      old_hops == kHopsSentinel ? -1 : static_cast<int>(old_hops);
  out->round = static_cast<int>(round);
  return Status::Ok();
}

TreeMaintenance::TreeMaintenance(sim::Simulator& sim, RoutingTree& tree,
                                 TreeMaintenanceConfig config)
    : sim_(sim), tree_(tree), config_(config) {
  SENSJOIN_CHECK_GT(config_.max_repair_rounds, 0);
  SENSJOIN_CHECK(config_.round_wait_s >= 0.0);
}

bool TreeMaintenance::HasLiveRootPath(sim::NodeId id) const {
  if (!tree_.InTree(id)) return false;
  for (sim::NodeId u = id; u != tree_.root();) {
    if (!sim_.alive(u)) return false;
    const sim::NodeId p = tree_.parent(u);
    if (p == sim::kInvalidNode) return false;
    // An active outage window passes repair traffic but blocks the join
    // traffic the orphan needs forwarded, so it disqualifies the path too.
    if (!sim_.radio().LinkUp(u, p) || sim_.radio().OutageActive(u, p)) {
      return false;
    }
    u = p;
  }
  return sim_.alive(tree_.root());
}

std::vector<sim::NodeId> TreeMaintenance::DetectOrphans() const {
  std::vector<sim::NodeId> orphans;
  for (sim::NodeId u = 0; u < sim_.num_nodes(); ++u) {
    if (u == tree_.root() || !tree_.InTree(u)) continue;
    if (!sim_.alive(u)) continue;
    const sim::NodeId p = tree_.parent(u);
    if (p == sim::kInvalidNode) continue;
    if (!sim_.alive(p) || !sim_.radio().LinkUp(u, p) ||
        sim_.radio().OutageActive(u, p)) {
      orphans.push_back(u);
    }
  }
  return orphans;
}

bool TreeMaintenance::Repair(sim::NodeId orphan,
                             const ParentAcceptable& acceptable) {
  SENSJOIN_CHECK(orphan >= 0 && orphan < sim_.num_nodes());
  SENSJOIN_CHECK(orphan != tree_.root()) << "the root cannot be an orphan";
  if (!sim_.alive(orphan) || !tree_.InTree(orphan)) return false;

  obs::ScopedPhase span(sim_.tracer(), sim_.events(), obs::Phase::kTreeRepair);
  ++stats_.orphans_detected;
  if (TraceOn(sim_)) {
    sim_.tracer()->Record(obs::EventKind::kOrphanDetected, sim_.now(), orphan,
                          tree_.parent(orphan), sim::MessageKind::kRepair,
                          /*count=*/0, /*bytes=*/0, /*energy_mj=*/0.0);
  }

  const int n = sim_.num_nodes();
  std::vector<char> in_subtree(n, 0);
  for (sim::NodeId u : tree_.SubtreeNodes(orphan)) in_subtree[u] = 1;

  for (int round = 0; round < config_.max_repair_rounds; ++round) {
    // Later rounds wait for scheduled topology changes (reboots, outage
    // ends) to open new candidates before asking again.
    if (round > 0) sim_.events().RunUntil(sim_.now() + config_.round_wait_s);

    RepairRequest req;
    req.orphan = orphan;
    req.dead_parent = tree_.parent(orphan);
    req.old_hops = tree_.hop_count(orphan);
    req.round = round;
    const BitWriter wire = EncodeRepairRequest(req);

    sim::Message msg;
    msg.src = orphan;
    msg.kind = sim::MessageKind::kRepair;
    msg.payload_bytes = wire.size_bytes();
    msg.content = wire;
    std::vector<sim::NodeId> delivered;
    sim_.Broadcast(std::move(msg), &delivered);
    ++stats_.requests_broadcast;
    if (TraceOn(sim_)) {
      sim_.tracer()->Record(obs::EventKind::kRepairRequest, sim_.now(), orphan,
                            req.dead_parent, sim::MessageKind::kRepair,
                            /*count=*/1, wire.size_bytes(), /*energy_mj=*/0.0,
                            /*detail=*/static_cast<uint32_t>(round));
    }

    // Each receiver runs the hardened decode path of the beacon it heard,
    // then replies if it can actually serve as a parent.
    sim::NodeId best = sim::kInvalidNode;
    int best_hops = std::numeric_limits<int>::max();
    double best_dist = std::numeric_limits<double>::max();
    for (sim::NodeId nb : delivered) {
      RepairRequest heard;
      if (!DecodeRepairRequest(wire.bytes().data(), wire.size_bits(), n,
                               &heard)
               .ok()) {
        continue;
      }
      if (in_subtree[nb]) continue;  // would close a routing loop
      if (!HasLiveRootPath(nb)) continue;
      if (acceptable && !acceptable(nb)) continue;

      sim::Message reply;
      reply.src = nb;
      reply.dst = orphan;
      reply.kind = sim::MessageKind::kRepair;
      reply.payload_bytes = kRepairReplyBytes;
      reply.content = RepairReply{nb, tree_.hop_count(nb)};
      if (config_.stamp) config_.stamp(reply);
      if (!sim_.SendUnicast(reply)) {
        if (config_.retract) config_.retract(reply);
        continue;
      }
      ++stats_.candidate_replies;

      const double dist = Distance(sim_.radio().position(orphan),
                                   sim_.radio().position(nb));
      const int hops = tree_.hop_count(nb);
      const bool better =
          hops < best_hops ||
          (hops == best_hops &&
           (dist < best_dist || (dist == best_dist && nb < best)));
      if (better) {
        best = nb;
        best_hops = hops;
        best_dist = dist;
      }
    }

    if (best != sim::kInvalidNode) {
      // Re-attach notice so the new parent learns its child (charged like
      // the rest of the repair traffic).
      sim::Message notice;
      notice.src = orphan;
      notice.dst = best;
      notice.kind = sim::MessageKind::kRepair;
      notice.payload_bytes = kRepairRequestBytes;
      notice.content = req;
      if (config_.stamp) config_.stamp(notice);
      if (!sim_.SendUnicast(notice)) {
        if (config_.retract) config_.retract(notice);
      }

      tree_.Reparent(orphan, best);
      ++stats_.repairs_succeeded;
      if (TraceOn(sim_)) {
        sim_.tracer()->Record(
            obs::EventKind::kReattach, sim_.now(), orphan, best,
            sim::MessageKind::kRepair, /*count=*/1, /*bytes=*/0,
            /*energy_mj=*/0.0,
            /*detail=*/static_cast<uint32_t>(tree_.hop_count(orphan)));
      }
      return true;
    }
  }

  ++stats_.repairs_failed;
  return false;
}

}  // namespace sensjoin::net
