#include "sensjoin/net/routing_tree.h"

#include <algorithm>
#include <any>
#include <limits>
#include <utility>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/logging.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::net {
namespace {

/// Beacon payload: the sender's hop count to the root. 4 bytes on the wire
/// (CTP beacons are small control frames).
struct BeaconPayload {
  int hops = 0;
};

constexpr size_t kBeaconBytes = 4;

/// Transient per-node protocol state during a beaconing round.
struct BeaconState {
  int hops = -1;  // best known own hop count; -1 = no route yet
  sim::NodeId parent = sim::kInvalidNode;
  double parent_distance = std::numeric_limits<double>::max();
};

}  // namespace

RoutingTree RoutingTree::Build(sim::Simulator& sim, sim::NodeId root) {
  const int n = sim.num_nodes();
  SENSJOIN_CHECK(root >= 0 && root < n);

  std::vector<BeaconState> state(n);
  state[root].hops = 0;

  auto send_beacon = [&sim](sim::NodeId who, int hops) {
    sim::Message msg;
    msg.src = who;
    msg.kind = sim::MessageKind::kBeacon;
    msg.payload_bytes = kBeaconBytes;
    msg.content = BeaconPayload{hops};
    sim.Broadcast(std::move(msg));
  };

  auto previous = sim.SetReceiveHandler(
      [&](sim::NodeId receiver, const sim::Message& msg) {
        if (msg.kind != sim::MessageKind::kBeacon) return;
        if (receiver == root) return;  // the root never adopts a parent
        const auto& beacon = std::any_cast<const BeaconPayload&>(msg.content);
        const int candidate_hops = beacon.hops + 1;
        BeaconState& s = state[receiver];
        const double dist = Distance(sim.radio().position(receiver),
                                     sim.radio().position(msg.src));
        const bool better =
            s.hops < 0 || candidate_hops < s.hops ||
            (candidate_hops == s.hops &&
             (dist < s.parent_distance ||
              (dist == s.parent_distance && msg.src < s.parent)));
        if (!better) return;
        const bool hops_changed = s.hops != candidate_hops;
        s.hops = candidate_hops;
        s.parent = msg.src;
        s.parent_distance = dist;
        // Re-advertise only when our own metric changed; parent swaps at
        // equal hop count do not affect downstream routes.
        if (hops_changed) send_beacon(receiver, s.hops);
      });

  {
    obs::ScopedPhase span(sim.tracer(), sim.events(),
                          obs::Phase::kTreeBuild);
    send_beacon(root, 0);
    sim.events().Run();
  }
  sim.SetReceiveHandler(std::move(previous));

  RoutingTree tree;
  tree.root_ = root;
  tree.parent_.resize(n, sim::kInvalidNode);
  tree.hops_.resize(n, -1);
  for (int i = 0; i < n; ++i) {
    tree.parent_[i] = state[i].parent;
    tree.hops_[i] = state[i].hops;
  }
  tree.FinalizeFromParents();
  return tree;
}

std::vector<sim::NodeId> RoutingTree::UnreachableNodes() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId i = 0; i < num_nodes(); ++i) {
    if (hops_[i] < 0) out.push_back(i);
  }
  return out;
}

std::vector<sim::NodeId> RoutingTree::SubtreeNodes(sim::NodeId id) const {
  std::vector<sim::NodeId> out;
  if (id < 0 || id >= num_nodes() || !InTree(id)) return out;
  out.push_back(id);
  for (size_t i = 0; i < out.size(); ++i) {
    for (sim::NodeId c : children_[out[i]]) out.push_back(c);
  }
  return out;
}

bool RoutingTree::IsAncestor(sim::NodeId ancestor, sim::NodeId id) const {
  if (!InTree(ancestor) || !InTree(id)) return false;
  for (sim::NodeId u = id; u != sim::kInvalidNode; u = parent_[u]) {
    if (u == ancestor) return true;
  }
  return false;
}

void RoutingTree::Reparent(sim::NodeId child, sim::NodeId new_parent) {
  SENSJOIN_CHECK(child >= 0 && child < num_nodes());
  SENSJOIN_CHECK(new_parent >= 0 && new_parent < num_nodes());
  SENSJOIN_CHECK(child != root_) << "cannot reparent the root";
  SENSJOIN_CHECK(InTree(new_parent))
      << "re-attach target " << new_parent << " is not in the tree";
  const std::vector<sim::NodeId> subtree = SubtreeNodes(child);
  if (subtree.empty()) {
    // Out-of-tree orphan joining for the first time: it has no descendants
    // (its old subtree was detached or never built).
    parent_[child] = new_parent;
    hops_[child] = hops_[new_parent] + 1;
    FinalizeFromParents();
    return;
  }
  for (sim::NodeId u : subtree) {
    SENSJOIN_CHECK(u != new_parent)
        << "re-attach target " << new_parent << " is inside the subtree of "
        << child << " (would form a routing loop)";
  }
  parent_[child] = new_parent;
  // BFS over the (unchanged) subtree structure re-derives hop counts.
  hops_[child] = hops_[new_parent] + 1;
  for (size_t i = 0; i < subtree.size(); ++i) {
    for (sim::NodeId c : children_[subtree[i]]) hops_[c] = hops_[subtree[i]] + 1;
  }
  FinalizeFromParents();
}

void RoutingTree::Detach(sim::NodeId id) {
  const std::vector<sim::NodeId> subtree = SubtreeNodes(id);
  if (subtree.empty()) return;
  SENSJOIN_CHECK(id != root_) << "cannot detach the root";
  for (sim::NodeId u : subtree) {
    parent_[u] = sim::kInvalidNode;
    hops_[u] = -1;
  }
  FinalizeFromParents();
}

void RoutingTree::FinalizeFromParents() {
  const int n = static_cast<int>(parent_.size());
  children_.assign(n, {});
  subtree_size_.assign(n, 0);
  num_reachable_ = 0;
  max_depth_ = 0;

  for (sim::NodeId i = 0; i < n; ++i) {
    if (hops_[i] < 0) continue;
    ++num_reachable_;
    max_depth_ = std::max(max_depth_, hops_[i]);
    if (parent_[i] != sim::kInvalidNode) children_[parent_[i]].push_back(i);
  }
  for (auto& c : children_) std::sort(c.begin(), c.end());

  // Children-before-parent order: sort in-tree nodes by decreasing depth
  // (ties by id). Within one depth level no node is another's ancestor.
  collection_order_.clear();
  collection_order_.reserve(num_reachable_);
  for (sim::NodeId i = 0; i < n; ++i) {
    if (hops_[i] >= 0) collection_order_.push_back(i);
  }
  std::sort(collection_order_.begin(), collection_order_.end(),
            [this](sim::NodeId a, sim::NodeId b) {
              if (hops_[a] != hops_[b]) return hops_[a] > hops_[b];
              return a < b;
            });
  dissemination_order_.assign(collection_order_.rbegin(),
                              collection_order_.rend());

  for (sim::NodeId id : collection_order_) {
    subtree_size_[id] += 1;  // self
    if (parent_[id] != sim::kInvalidNode) {
      subtree_size_[parent_[id]] += subtree_size_[id];
    }
  }
}

}  // namespace sensjoin::net
