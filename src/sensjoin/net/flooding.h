#ifndef SENSJOIN_NET_FLOODING_H_
#define SENSJOIN_NET_FLOODING_H_

#include <cstddef>

#include "sensjoin/sim/simulator.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::net {

/// Disseminates a payload of `payload_bytes` from `root` by simple
/// broadcast flooding: every node rebroadcasts once on first receipt.
/// Transmissions are accounted under `kind`. Returns the number of nodes
/// reached (including `root`).
int FloodPayload(sim::Simulator& sim, sim::NodeId root, size_t payload_bytes,
                 sim::MessageKind kind);

/// Query dissemination (Sec. III "Query Processing"): FloodPayload under
/// MessageKind::kQuery.
int FloodQuery(sim::Simulator& sim, sim::NodeId root, size_t query_bytes);

}  // namespace sensjoin::net

#endif  // SENSJOIN_NET_FLOODING_H_
