#ifndef SENSJOIN_NET_FLOODING_H_
#define SENSJOIN_NET_FLOODING_H_

#include <cstddef>
#include <vector>

#include "sensjoin/sim/simulator.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::net {

/// Broadcast flooding with persistent re-broadcast suppression, the way a
/// deployed node would implement it: each node remembers that it already
/// forwarded the current flood and stays quiet on further receipts.
///
/// The suppression memory deliberately outlives a single Flood call — that
/// is the node-resident state — so a driver that re-floods (a query
/// re-execution after an aborted attempt) MUST call ResetSuppression()
/// first, exactly like a new query epoch resets the duplicate caches of
/// real dissemination protocols (Trickle versions, Drip keys). Without the
/// reset, a second flood dies at the first hop: every node still remembers
/// the first flood, nobody rebroadcasts, and only the root's direct
/// neighbors hear the payload.
class Flooder {
 public:
  /// `sim` must outlive the Flooder.
  explicit Flooder(sim::Simulator& sim);

  /// Disseminates a payload of `payload_bytes` from `root`: every
  /// not-yet-suppressed node rebroadcasts once on first receipt, then
  /// suppresses itself. Transmissions are accounted under `kind`. Returns
  /// the number of nodes the payload reached in THIS call (including
  /// `root`); suppressed nodes still count when a broadcast reaches them,
  /// they just stay quiet.
  int Flood(sim::NodeId root, size_t payload_bytes, sim::MessageKind kind);

  /// Clears every node's suppression memory. Call between protocol
  /// attempts: suppression exists to stop one flood from echoing forever,
  /// not to mute the re-flood of a re-executed query.
  void ResetSuppression();

 private:
  sim::Simulator& sim_;
  std::vector<char> suppressed_;  ///< per-node "already forwarded" memory
};

/// One-shot convenience wrapper: floods through a fresh Flooder (fresh
/// suppression state), preserving the historical free-function behavior.
int FloodPayload(sim::Simulator& sim, sim::NodeId root, size_t payload_bytes,
                 sim::MessageKind kind);

/// Query dissemination (Sec. III "Query Processing"): FloodPayload under
/// MessageKind::kQuery.
int FloodQuery(sim::Simulator& sim, sim::NodeId root, size_t query_bytes);

}  // namespace sensjoin::net

#endif  // SENSJOIN_NET_FLOODING_H_
