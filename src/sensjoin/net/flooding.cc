#include "sensjoin/net/flooding.h"

#include <optional>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::net {

int FloodPayload(sim::Simulator& sim, sim::NodeId root, size_t payload_bytes,
                 sim::MessageKind kind) {
  const int n = sim.num_nodes();
  SENSJOIN_CHECK(root >= 0 && root < n);
  // Query floods are a protocol phase of their own on the trace timeline;
  // other flood kinds (app-level data) stay unattributed.
  std::optional<obs::ScopedPhase> span;
  if (kind == sim::MessageKind::kQuery) {
    span.emplace(sim.tracer(), sim.events(), obs::Phase::kQueryDissemination);
  }
  std::vector<char> received(n, 0);
  received[root] = 1;

  auto rebroadcast = [&sim, payload_bytes, kind](sim::NodeId who) {
    sim::Message msg;
    msg.src = who;
    msg.kind = kind;
    msg.payload_bytes = payload_bytes;
    sim.Broadcast(std::move(msg));
  };

  auto previous = sim.SetReceiveHandler(
      [&](sim::NodeId receiver, const sim::Message& msg) {
        if (msg.kind != kind) return;
        if (received[receiver]) return;
        received[receiver] = 1;
        rebroadcast(receiver);
      });

  rebroadcast(root);
  sim.events().Run();
  sim.SetReceiveHandler(std::move(previous));

  int count = 0;
  for (char c : received) count += c;
  return count;
}

int FloodQuery(sim::Simulator& sim, sim::NodeId root, size_t query_bytes) {
  return FloodPayload(sim, root, query_bytes, sim::MessageKind::kQuery);
}

}  // namespace sensjoin::net
