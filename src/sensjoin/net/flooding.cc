#include "sensjoin/net/flooding.h"

#include <optional>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::net {

Flooder::Flooder(sim::Simulator& sim)
    : sim_(sim), suppressed_(sim.num_nodes(), 0) {}

void Flooder::ResetSuppression() {
  suppressed_.assign(sim_.num_nodes(), 0);
}

int Flooder::Flood(sim::NodeId root, size_t payload_bytes,
                   sim::MessageKind kind) {
  const int n = sim_.num_nodes();
  SENSJOIN_CHECK(root >= 0 && root < n);
  SENSJOIN_CHECK_EQ(suppressed_.size(), static_cast<size_t>(n));
  // Query floods are a protocol phase of their own on the trace timeline;
  // other flood kinds (app-level data) stay unattributed.
  std::optional<obs::ScopedPhase> span;
  if (kind == sim::MessageKind::kQuery) {
    span.emplace(sim_.tracer(), sim_.events(), obs::Phase::kQueryDissemination);
  }
  // Reach is per call; suppression is the persistent per-node state.
  std::vector<char> reached(n, 0);
  reached[root] = 1;
  suppressed_[root] = 1;

  auto rebroadcast = [this, payload_bytes, kind](sim::NodeId who) {
    sim::Message msg;
    msg.src = who;
    msg.kind = kind;
    msg.payload_bytes = payload_bytes;
    sim_.Broadcast(std::move(msg));
  };

  auto previous = sim_.SetReceiveHandler(
      [&](sim::NodeId receiver, const sim::Message& msg) {
        if (msg.kind != kind) return;
        reached[receiver] = 1;
        if (suppressed_[receiver]) return;
        suppressed_[receiver] = 1;
        rebroadcast(receiver);
      });

  rebroadcast(root);
  sim_.events().Run();
  sim_.SetReceiveHandler(std::move(previous));

  int count = 0;
  for (char c : reached) count += c;
  return count;
}

int FloodPayload(sim::Simulator& sim, sim::NodeId root, size_t payload_bytes,
                 sim::MessageKind kind) {
  Flooder flooder(sim);
  return flooder.Flood(root, payload_bytes, kind);
}

int FloodQuery(sim::Simulator& sim, sim::NodeId root, size_t query_bytes) {
  return FloodPayload(sim, root, query_bytes, sim::MessageKind::kQuery);
}

}  // namespace sensjoin::net
