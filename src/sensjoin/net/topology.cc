#include "sensjoin/net/topology.h"

#include <queue>
#include <string>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/sim/radio.h"

namespace sensjoin::net {
namespace {

/// Marks every node reachable from `root` over the unit-disk graph. Uses
/// the scratch-buffer neighbor API so connectivity checks work in on-demand
/// (100k+ node) radio mode too.
std::vector<char> ReachableFrom(const sim::Radio& radio, sim::NodeId root) {
  std::vector<char> seen(radio.num_nodes(), 0);
  std::queue<sim::NodeId> frontier;
  std::vector<sim::NodeId> nbrs;
  frontier.push(root);
  seen[root] = 1;
  while (!frontier.empty()) {
    const sim::NodeId u = frontier.front();
    frontier.pop();
    radio.Neighbors(u, nbrs);
    for (sim::NodeId v : nbrs) {
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push(v);
      }
    }
  }
  return seen;
}

}  // namespace

StatusOr<Placement> GenerateConnectedPlacement(const PlacementParams& params,
                                               Rng& rng) {
  if (params.num_nodes < 2) {
    return Status::InvalidArgument("placement needs at least two nodes");
  }
  if (params.area_width_m <= 0 || params.area_height_m <= 0 ||
      params.range_m <= 0) {
    return Status::InvalidArgument("area and range must be positive");
  }

  Placement placement;
  placement.params = params;
  placement.positions.resize(params.num_nodes);

  // Base station position.
  switch (params.base_station) {
    case BaseStationPlacement::kCenter:
      placement.positions[0] = {params.area_width_m / 2,
                                params.area_height_m / 2};
      break;
    case BaseStationPlacement::kCorner:
      placement.positions[0] = {0.0, 0.0};
      break;
  }

  for (int i = 1; i < params.num_nodes; ++i) {
    placement.positions[i] = {rng.UniformDouble(0, params.area_width_m),
                              rng.UniformDouble(0, params.area_height_m)};
  }

  // Iteratively resample nodes that cannot reach the base station; this
  // converges much faster than regenerating whole placements.
  for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
    // Materialization is skipped: the connectivity check only needs one
    // BFS pass, so the grid-backed on-demand mode is both faster to build
    // and far smaller at 100k+ nodes.
    sim::Radio radio(placement.positions, params.range_m,
                     sim::RadioOptions{.materialize_threshold = 0});
    std::vector<char> seen = ReachableFrom(radio, 0);
    int unreachable = 0;
    for (int i = 0; i < params.num_nodes; ++i) {
      if (!seen[i]) {
        ++unreachable;
        placement.positions[i] = {rng.UniformDouble(0, params.area_width_m),
                                  rng.UniformDouble(0, params.area_height_m)};
      }
    }
    if (unreachable == 0) return placement;
  }
  return Status::ResourceExhausted(
      "could not generate a connected placement in " +
      std::to_string(params.max_attempts) + " attempts; density too low?");
}

}  // namespace sensjoin::net
