#ifndef SENSJOIN_NET_TREE_MAINTENANCE_H_
#define SENSJOIN_NET_TREE_MAINTENANCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/common/status.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/sim/simulator.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::net {

/// In-network repair of the collection tree, in the spirit of CTP route
/// repair: when a node's parent dies (or the link to it stays dark past the
/// ARQ budget), the orphan broadcasts a repair request, live neighbors with
/// a working route to the root reply, and the orphan re-attaches its whole
/// subtree under the best candidate — without the O(network) cost of a full
/// beaconing round plus query re-execution.
///
/// Loop freedom: a candidate is admitted only if it lies outside the
/// orphan's subtree and every node on its own path to the root is alive
/// with up links. Outside-the-subtree means the candidate's root path
/// cannot pass through the orphan (tree property), so adopting it can
/// never close a cycle — two siblings orphaned by the same crashed parent
/// in particular can never adopt each other, because each other's root
/// paths run through the dead parent and fail the liveness check.
///
/// All repair traffic goes over the simulator as MessageKind::kRepair, so
/// it is charged in the energy model and itemized in CostReport. Like
/// beacons, kRepair is exempt from loss/corruption/outage (see
/// Simulator::LossApplies): repair outcomes are deterministic and a run
/// that never repairs draws zero fault randomness, keeping fault-free
/// executions bit-identical.
struct TreeMaintenanceConfig {
  /// Repair-request broadcast rounds per orphan before giving up. Between
  /// rounds the orphan waits `round_wait_s` of simulation time, letting
  /// scheduled recoveries (reboots, outage ends) change the neighborhood.
  int max_repair_rounds = 2;
  double round_wait_s = 0.25;

  /// Delivery-tag hooks (join/delivery_guard.h): when set, every repair
  /// unicast (candidate reply, re-attach notice) is stamped with the
  /// caller's (attempt, per-link sequence) tag before its first send and
  /// retracted when the send permanently fails, so repair traffic
  /// participates in the exactly-once validation without a net -> join
  /// dependency. Unset hooks leave repair unicasts untagged (exempt).
  std::function<void(sim::Message&)> stamp;
  std::function<void(const sim::Message&)> retract;
};

/// Wire payload of the repair-request beacon an orphan broadcasts. The
/// encoded form really crosses the (simulated) wire and is decoded by a
/// hardened decoder on the receiver path — fuzzed by
/// fuzz/repair_beacon_fuzz.cc.
struct RepairRequest {
  sim::NodeId orphan = sim::kInvalidNode;
  sim::NodeId dead_parent = sim::kInvalidNode;  ///< may be kInvalidNode
  int old_hops = -1;  ///< orphan's depth before the failure; -1 = unknown
  int round = 0;      ///< 0-based broadcast round
};

/// Wire size of an encoded repair request (magic + 2 node ids + hops +
/// round).
inline constexpr size_t kRepairRequestBytes = 7;

/// Encodes `req` to its wire bitstring. Requires ids < 0xFFFF and fields in
/// range (checked).
BitWriter EncodeRepairRequest(const RepairRequest& req);

/// Hardened decoder over untrusted bytes: every structural violation
/// (short buffer, bad magic, out-of-range field, trailing garbage) is a
/// non-OK Status, never a crash. `num_nodes` bounds the node-id range; pass
/// 0 to skip the range check (fuzzing without a topology).
Status DecodeRepairRequest(const uint8_t* bytes, size_t size_bits,
                           int num_nodes, RepairRequest* out);

/// Counters kept across Repair calls (one instance per execution attempt).
struct RepairStats {
  int orphans_detected = 0;
  int repairs_succeeded = 0;
  int repairs_failed = 0;
  int requests_broadcast = 0;
  int candidate_replies = 0;
};

/// Drives repairs against one simulator + tree pair. The tree is mutated in
/// place on success (RoutingTree::Reparent), so executor traversal state
/// keyed by node id stays valid while orders and subtree sizes re-derive.
class TreeMaintenance {
 public:
  /// Extra admission predicate on candidate parents; the join executor uses
  /// it to exclude nodes that already left the protocol (Treecut exits).
  /// An empty function admits every structurally valid candidate.
  using ParentAcceptable = std::function<bool(sim::NodeId)>;

  TreeMaintenance(sim::Simulator& sim, RoutingTree& tree,
                  TreeMaintenanceConfig config = TreeMaintenanceConfig{});

  /// Attempts to re-attach `orphan` (and its whole subtree) under a live
  /// neighbor with a working route to the root. Runs up to
  /// `max_repair_rounds` request/reply rounds; every broadcast and reply is
  /// charged as kRepair traffic. Returns true when the orphan was
  /// re-attached (the tree is already updated); false when no admissible
  /// candidate exists, leaving the tree untouched.
  bool Repair(sim::NodeId orphan, const ParentAcceptable& acceptable = {});

  /// In-tree non-root nodes that are alive but cut off from their parent
  /// (parent dead or link down), ascending by id. Orphans nested under a
  /// dead ancestor are reported too — repairing the shallowest first
  /// usually rescues the rest.
  std::vector<sim::NodeId> DetectOrphans() const;

  const RepairStats& stats() const { return stats_; }

 private:
  /// True when every node on `id`'s current path to the root (inclusive) is
  /// alive and every hop's link is up: `id` can actually forward traffic.
  bool HasLiveRootPath(sim::NodeId id) const;

  sim::Simulator& sim_;
  RoutingTree& tree_;
  TreeMaintenanceConfig config_;
  RepairStats stats_;
};

}  // namespace sensjoin::net

#endif  // SENSJOIN_NET_TREE_MAINTENANCE_H_
