#ifndef SENSJOIN_NET_TOPOLOGY_H_
#define SENSJOIN_NET_TOPOLOGY_H_

#include <vector>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/common/statusor.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::net {

/// Where to put the powered base station within the deployment area.
/// The default is a corner: WSN deployments typically have the access point
/// at the field edge, and the paper's reported packet counts imply a deep
/// routing tree (average depth well above the center-placement value).
enum class BaseStationPlacement {
  kCorner,  ///< Lower-left corner (default).
  kCenter,  ///< Middle of the area.
};

/// Parameters for a random node deployment, matching the paper's setting:
/// stationary nodes uniformly placed in a rectangle, fixed communication
/// range, node 0 is the base station.
struct PlacementParams {
  int num_nodes = 1500;
  double area_width_m = 1050.0;
  double area_height_m = 1050.0;
  double range_m = 50.0;
  BaseStationPlacement base_station = BaseStationPlacement::kCorner;
  /// How many whole-placement retries before giving up on connectivity.
  int max_attempts = 50;
};

/// A concrete deployment: node positions (node 0 is the base station) plus
/// the parameters that produced it.
struct Placement {
  PlacementParams params;
  std::vector<sensjoin::Point> positions;

  sim::NodeId base_station_id() const { return 0; }
};

/// Generates a uniformly random placement whose unit-disk graph (at
/// params.range_m) is connected to the base station. Returns an error if a
/// connected placement cannot be found within params.max_attempts (e.g., the
/// density is far too low).
StatusOr<Placement> GenerateConnectedPlacement(const PlacementParams& params,
                                               Rng& rng);

}  // namespace sensjoin::net

#endif  // SENSJOIN_NET_TOPOLOGY_H_
