#ifndef SENSJOIN_NET_ROUTING_TREE_H_
#define SENSJOIN_NET_ROUTING_TREE_H_

#include <vector>

#include "sensjoin/sim/simulator.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::net {

/// A collection routing tree in the style of the TinyOS Collection Tree
/// Protocol: every node maintains a parent minimizing the hop count to the
/// base station, established by beaconing (Sec. III "Query Processing").
///
/// The tree is a snapshot of the beaconing round; global topology changes
/// call for a new Build, but localized failures can be patched in place
/// with the repair mutators (Reparent / Detach) that
/// net/tree_maintenance.h drives — every mutator re-derives the children
/// lists, subtree sizes and traversal orders, so the snapshot invariants
/// keep holding after a repair.
class RoutingTree {
 public:
  /// Runs a beaconing round on `sim` and returns the resulting tree rooted
  /// at `root`. Beacon transmissions are accounted under
  /// MessageKind::kBeacon (tree maintenance, excluded from join costs).
  /// Nodes that cannot reach the root over up links end up without a parent.
  /// Ties between equal-hop parents are broken by link distance, then id,
  /// so construction is deterministic.
  static RoutingTree Build(sim::Simulator& sim, sim::NodeId root);

  sim::NodeId root() const { return root_; }

  /// Parent of `id`, or kInvalidNode for the root and unreachable nodes.
  sim::NodeId parent(sim::NodeId id) const { return parent_[id]; }

  /// The whole parent array, indexed by node id (kInvalidNode for the root
  /// and unreachable nodes) — the input to sim::PartitionMap::FromParents.
  const std::vector<sim::NodeId>& parents() const { return parent_; }

  const std::vector<sim::NodeId>& children(sim::NodeId id) const {
    return children_[id];
  }

  /// Hops to the root; 0 for the root, -1 if unreachable.
  int hop_count(sim::NodeId id) const { return hops_[id]; }

  bool InTree(sim::NodeId id) const { return hops_[id] >= 0; }
  bool IsLeaf(sim::NodeId id) const {
    return InTree(id) && children_[id].empty();
  }

  int num_nodes() const { return static_cast<int>(parent_.size()); }

  /// Number of nodes with a route to the root (including the root).
  int num_reachable() const { return num_reachable_; }

  /// Number of nodes in the subtree rooted at `id` (itself included);
  /// 0 for unreachable nodes. descendants(id) == subtree_size(id) - 1.
  int subtree_size(sim::NodeId id) const { return subtree_size_[id]; }

  /// Deepest hop count in the tree.
  int max_depth() const { return max_depth_; }

  /// In-tree nodes ordered children-before-parent (root last). This is the
  /// order in which a staged leaf-to-root collection proceeds.
  const std::vector<sim::NodeId>& collection_order() const {
    return collection_order_;
  }

  /// In-tree nodes ordered parent-before-children (root first): the order of
  /// a top-down dissemination.
  const std::vector<sim::NodeId>& dissemination_order() const {
    return dissemination_order_;
  }

  /// Nodes without a route to the root, ascending by id. Non-empty on
  /// partially-connected fields; join executors count these against result
  /// completeness instead of waiting for them.
  std::vector<sim::NodeId> UnreachableNodes() const;

  // --- Repair mutators (used by net/tree_maintenance.h) ------------------

  /// All nodes of the subtree rooted at `id` (itself included), in BFS
  /// order; empty when `id` is not in the tree.
  std::vector<sim::NodeId> SubtreeNodes(sim::NodeId id) const;

  /// True when `ancestor` lies on `id`'s path to the root (a node is its
  /// own ancestor). False for out-of-tree nodes.
  bool IsAncestor(sim::NodeId ancestor, sim::NodeId id) const;

  /// Re-attaches the subtree rooted at `child` under `new_parent`,
  /// re-deriving hop counts, children lists, subtree sizes and the
  /// traversal orders. `new_parent` must be in the tree and must not be
  /// inside `child`'s subtree (loop freedom is the caller's contract;
  /// violating it is a CHECK failure, not a cycle).
  void Reparent(sim::NodeId child, sim::NodeId new_parent);

  /// Removes the subtree rooted at `id` from the tree: every node in it
  /// becomes unreachable (hops -1, no parent). No-op for out-of-tree ids.
  void Detach(sim::NodeId id);

 private:
  RoutingTree() = default;
  void FinalizeFromParents();

  sim::NodeId root_ = sim::kInvalidNode;
  std::vector<sim::NodeId> parent_;
  std::vector<int> hops_;
  std::vector<std::vector<sim::NodeId>> children_;
  std::vector<int> subtree_size_;
  std::vector<sim::NodeId> collection_order_;
  std::vector<sim::NodeId> dissemination_order_;
  int num_reachable_ = 0;
  int max_depth_ = 0;
};

}  // namespace sensjoin::net

#endif  // SENSJOIN_NET_ROUTING_TREE_H_
