// Operator's view: run the same query with both executors and render ASCII
// reports of where the transmissions happen — the external join burns the
// nodes around the base station; SENS-Join flattens the hot spot.
//
//   ./network_report [seed]

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "sensjoin/testbed/report.h"

int main(int argc, char** argv) {
  using namespace sensjoin;

  testbed::TestbedParams params;
  params.placement.num_nodes = 700;
  params.placement.area_width_m = 720;
  params.placement.area_height_m = 720;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto tb = testbed::Testbed::Create(params);
  if (!tb.ok()) {
    std::cerr << "testbed: " << tb.status() << "\n";
    return 1;
  }
  std::cout << testbed::TreeSummary((*tb)->tree()) << "\n";

  auto query = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 850 ONCE");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }

  auto external = (*tb)->MakeExternalJoin().Execute(*query, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*query, 0);
  if (!external.ok() || !sens.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }

  std::cout << "=== external join (" << external->cost.join_packets
            << " packets) ===\n"
            << testbed::LoadHeatMap((*tb)->placement(),
                                    external->cost.per_node_packets)
            << "\n"
            << testbed::CostByDepth((*tb)->tree(), external->cost) << "\n";
  std::cout << "=== SENS-Join (" << sens->cost.join_packets
            << " packets) ===\n"
            << testbed::LoadHeatMap((*tb)->placement(),
                                    sens->cost.per_node_packets)
            << "\n"
            << testbed::CostByDepth((*tb)->tree(), sens->cost) << "\n";
  return 0;
}
