// Quickstart: stand up a simulated sensor network, run one join query with
// SENS-Join and with the external-join baseline, and compare answers and
// communication costs.
//
//   ./quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"

int main(int argc, char** argv) {
  using namespace sensjoin;

  // 1. A deployment: 500 nodes in a 600 m x 600 m field, base station at a
  //    corner, default sensor fields (temp/hum/pres/light) and 48 B packets.
  testbed::TestbedParams params;
  params.placement.num_nodes = 500;
  params.placement.area_width_m = 600;
  params.placement.area_height_m = 600;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto tb = testbed::Testbed::Create(params);
  if (!tb.ok()) {
    std::cerr << "testbed: " << tb.status() << "\n";
    return 1;
  }

  // 2. A declarative join query: humidity readings of node pairs with
  //    similar temperature that are far apart (Q2 style).
  auto query = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 750 ONCE");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }

  // 3. Disseminate the query and execute it both ways on the same snapshot.
  (*tb)->DisseminateQuery(*query);

  auto external = (*tb)->MakeExternalJoin().Execute(*query, /*epoch=*/0);
  auto sens = (*tb)->MakeSensJoin().Execute(*query, /*epoch=*/0);
  if (!external.ok() || !sens.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }

  std::cout << "result rows:          " << sens->result.rows.size() << "\n"
            << "contributing nodes:   "
            << sens->result.contributing_nodes.size() << " of "
            << params.placement.num_nodes - 1 << "\n"
            << "external join:        " << external->cost.join_packets
            << " packet transmissions\n"
            << "SENS-Join:            " << sens->cost.join_packets
            << " packet transmissions ("
            << sens->cost.phases.collection_packets << " collection + "
            << sens->cost.phases.filter_packets << " filter + "
            << sens->cost.phases.final_packets << " final)\n";

  const double saving =
      100.0 * (1.0 - static_cast<double>(sens->cost.join_packets) /
                         static_cast<double>(external->cost.join_packets));
  std::cout << "energy saved:         " << saving << "% of the baseline's "
            << "transmissions\n";

  // Results are identical: print the first few rows.
  std::cout << "\nfirst rows (A.hum, B.hum):\n";
  for (size_t i = 0; i < sens->result.rows.size() && i < 5; ++i) {
    std::cout << "  " << sens->result.rows[i][0] << ", "
              << sens->result.rows[i][1] << "\n";
  }
  return 0;
}
