// The paper's introductory scenario (Sec. I): a climate researcher explores
// a deployment interactively with snapshot queries.
//
//   Q1: the minimal distance between two points with a temperature
//       difference of more than a threshold.
//   Q2: humidity/pressure differences of node pairs with similar
//       temperature at least 100 m apart (excluding spatial correlation).
//
//   ./climate_monitoring [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "sensjoin/sensjoin.h"

namespace {

void RunQuery(sensjoin::testbed::Testbed& tb, const std::string& name,
              const std::string& sql) {
  std::cout << "\n--- " << name << " ---\n" << sql << "\n";
  auto query = tb.ParseQuery(sql);
  if (!query.ok()) {
    std::cerr << "parse error: " << query.status() << "\n";
    return;
  }
  tb.DisseminateQuery(*query);
  auto report = tb.MakeSensJoin().Execute(*query, /*epoch=*/0);
  if (!report.ok()) {
    std::cerr << "execution error: " << report.status() << "\n";
    return;
  }
  std::cout << "matches: " << report->result.matched_combinations
            << ", transmissions: " << report->cost.join_packets
            << ", response time: " << std::fixed << std::setprecision(2)
            << report->response_time_s << " s (simulated)\n";
  // Print the header and up to five rows.
  std::cout << "columns:";
  for (const auto& label : report->result.column_labels) {
    std::cout << "  " << label;
  }
  std::cout << "\n";
  for (size_t i = 0; i < report->result.rows.size() && i < 5; ++i) {
    std::cout << "  row:";
    for (double v : report->result.rows[i]) {
      std::cout << "  " << std::setprecision(3) << v;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  sensjoin::testbed::TestbedParams params;  // paper defaults: 1500 nodes
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  auto tb = sensjoin::testbed::Testbed::Create(params);
  if (!tb.ok()) {
    std::cerr << "testbed: " << tb.status() << "\n";
    return 1;
  }
  std::cout << "deployment: 1500 nodes, 1050 m x 1050 m, tree depth "
            << (*tb)->tree().max_depth() << "\n";

  // Q1, with the temperature threshold adapted to the synthetic field's
  // spread (the paper's 10 degC would be empty here).
  RunQuery(**tb, "Q1 (minimal distance at a large temperature difference)",
           "SELECT MIN(distance(A.x, A.y, B.x, B.y)) "
           "FROM sensors A, sensors B "
           "WHERE A.temp - B.temp > 5.0 ONCE");

  // Q2, verbatim from the paper.
  RunQuery(**tb, "Q2 (correlation sample: similar temperature, far apart)",
           "SELECT |A.hum - B.hum|, |A.pres - B.pres| "
           "FROM sensors A, sensors B "
           "WHERE |A.temp - B.temp| < 0.3 "
           "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE");

  // A Q2 variant that is actually selective in a spatially correlated
  // field: demanding a much larger separation makes matches rare and shows
  // SENS-Join at its best.
  RunQuery(**tb, "Q2' (selective variant: separation > 900 m)",
           "SELECT |A.hum - B.hum|, |A.pres - B.pres| "
           "FROM sensors A, sensors B "
           "WHERE |A.temp - B.temp| < 0.3 "
           "AND distance(A.x, A.y, B.x, B.y) > 900 ONCE");
  return 0;
}
