// Heterogeneous networks (Sec. III): groups of nodes form different
// relations. Here the western half of the field carries "upwind" stations
// and the eastern half "downwind" stations; the query correlates pressure
// across the two groups — a non-self-join with arbitrary tuple placement,
// which only a general-purpose join method can evaluate in-network.
//
//   ./heterogeneous_network [seed]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sensjoin/sensjoin.h"

int main(int argc, char** argv) {
  using namespace sensjoin;

  testbed::TestbedParams params;
  params.placement.num_nodes = 800;
  params.placement.area_width_m = 760;
  params.placement.area_height_m = 760;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  auto tb = testbed::Testbed::Create(params);
  if (!tb.ok()) {
    std::cerr << "testbed: " << tb.status() << "\n";
    return 1;
  }

  // Split the deployment by longitude into two relations.
  std::vector<sim::NodeId> upwind;
  std::vector<sim::NodeId> downwind;
  for (int i = 1; i < (*tb)->data().num_nodes(); ++i) {
    const Point& p = (*tb)->data().position(i);
    (p.x < params.placement.area_width_m / 2 ? upwind : downwind)
        .push_back(i);
  }
  (*tb)->data().AssignRelation("upwind", upwind);
  (*tb)->data().AssignRelation("downwind", downwind);
  std::cout << "upwind stations: " << upwind.size()
            << ", downwind stations: " << downwind.size() << "\n";

  auto query = (*tb)->ParseQuery(
      "SELECT U.pres, D.pres, distance(U.x, U.y, D.x, D.y) AS separation "
      "FROM upwind U, downwind D "
      "WHERE |U.pres - D.pres| < 0.2 AND U.temp - D.temp > 3 ONCE");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }
  (*tb)->DisseminateQuery(*query);

  auto external = (*tb)->MakeExternalJoin().Execute(*query, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*query, 0);
  if (!external.ok() || !sens.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }
  std::cout << "matching cross-group pairs: "
            << sens->result.matched_combinations << "\n"
            << "external join transmissions: " << external->cost.join_packets
            << "\nSENS-Join transmissions:     " << sens->cost.join_packets
            << "\n";
  for (size_t i = 0; i < sens->result.rows.size() && i < 5; ++i) {
    std::cout << "  upwind " << sens->result.rows[i][0] << " hPa, downwind "
              << sens->result.rows[i][1] << " hPa, separation "
              << sens->result.rows[i][2] << " m\n";
  }
  return 0;
}
