// Continuous queries (SAMPLE PERIOD, Sec. III): the query is re-executed
// over fresh snapshots every period. This example also injects a link
// failure between epochs to demonstrate the error-tolerance design of
// Sec. IV-F: the tree protocol repairs the route and the executor
// re-executes the query.
//
//   ./continuous_monitoring [seed]

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"

int main(int argc, char** argv) {
  using namespace sensjoin;

  testbed::TestbedParams params;
  params.placement.num_nodes = 600;
  params.placement.area_width_m = 660;
  params.placement.area_height_m = 660;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  auto tb = testbed::Testbed::Create(params);
  if (!tb.ok()) {
    std::cerr << "testbed: " << tb.status() << "\n";
    return 1;
  }

  auto query = (*tb)->ParseQuery(
      "SELECT COUNT(*), MIN(distance(A.x, A.y, B.x, B.y)) "
      "FROM sensors A, sensors B "
      "WHERE A.temp - B.temp > 6.5 "
      "SAMPLE PERIOD 30");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }
  std::cout << "continuous monitoring, one result every "
            << query->sample_period_s() << " s\n\n";
  (*tb)->DisseminateQuery(*query);

  auto executor = (*tb)->MakeSensJoin();
  for (uint64_t epoch = 0; epoch < 8; ++epoch) {
    if (epoch == 4) {
      // A link goes down between epochs 3 and 4; pick a loaded tree edge.
      const net::RoutingTree& tree = executor.tree();
      for (sim::NodeId u : tree.collection_order()) {
        if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 10 &&
            (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
          (*tb)->simulator().radio().FailLink(u, tree.parent(u));
          std::cout << "  [link " << u << " -> " << tree.parent(u)
                    << " failed]\n";
          break;
        }
      }
    }
    auto report = executor.Execute(*query, epoch);
    if (!report.ok()) {
      std::cerr << "epoch " << epoch << ": " << report.status() << "\n";
      continue;
    }
    const auto& row = report->result.rows[0];
    std::cout << "epoch " << epoch << ": pairs=" << row[0]
              << " min_distance=" << row[1] << " m"
              << "  (packets=" << report->cost.join_packets
              << ", attempts=" << report->attempts << ")\n";
  }
  std::cout << "\nnote: epoch 4 needed " << "re-execution after the tree "
            << "repair, as Sec. IV-F prescribes.\n";
  return 0;
}
