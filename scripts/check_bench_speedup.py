#!/usr/bin/env python3
"""Performance regression tripwires for the tracked benchmark baselines.

Two modes:

Filter-join mode (default):
    check_bench_speedup.py <bench.json> [n] [min_ratio]
  Reads a google-benchmark JSON file (as written by
  `micro_filterjoin --benchmark_out=...`) and compares
  BM_ComputeJoinFilterNaive/<n> against BM_ComputeJoinFilterIndexed/<n>.
  CI runners are noisy, so this is a regression tripwire, not a
  performance measurement: it fails only if the indexed engine loses to
  the naive one.

Runtime mode:
    check_bench_speedup.py --runtime <BENCH_runtime.json> [min_ratio]
  Asserts the parallel experiment engine actually scales: the micro
  trials/sec rate at 4 threads must be >= min_ratio (default 2.0) times
  the 1-thread rate, and at least two sweep benches must show
  threads_1_s / threads_4_s >= min_ratio. The assertion only fires when
  the baseline was recorded on a host with >= 4 CPUs (host_cpus field);
  on smaller hosts there is no parallelism to measure, so the check
  prints the numbers and passes.

  The same mode also checks the tracer overhead baseline (micro.trace,
  from bench/micro_trace.cc): the unicast rate with an attached-but-
  disabled tracer must stay within TRACE_OVERHEAD_TOLERANCE (5%) of the
  no-tracer rate. Disabled tracing is one branch on the hot path, so the
  bound is enforced regardless of CPU count; the check is skipped only
  when the trace fields are absent (baseline predating the tracer).

Scale mode:
    check_bench_speedup.py --scale <BENCH_runtime.json> [min_ratio]
  Validates the single-topology scale sweep (the "scale" section written
  by `fig14_network_size --scale --scale-json=...`):
  - every size must report fingerprint_match (the windowed engine's
    execution was bit-identical to sequential) — enforced always;
  - peak RSS of the largest size must stay under RSS_PER_NODE_BUDGET_KB
    per node — the compact-layout budget, enforced always;
  - on hosts with >= 4 CPUs, the windowed engine's intra-trial events/sec
    on the largest size must be >= min_ratio (default 1.5) times the
    sequential engine's. On smaller hosts the windowed engine has no
    cores to win with, so the numbers are printed and the check passes.

Service mode:
    check_bench_speedup.py --service <BENCH_runtime.json>
  Validates the continuous multi-query service sweep (the "service"
  section written by `svc_service --service-json=...`):
  - steady-state delta collection packets must be <= COLLECTION_RATIO
    (0.5) times the snapshot executor's collection packets for the same
    query — the delta engine must at least halve the recurring upward
    cost;
  - at the 16-query sweep point, the shared steady-state per-epoch cost
    must be <= SHARING_RATIO (0.25) times the dedicated cost — shared
    phases must amortize at least 4x at 16 queries.
  Both bounds are deterministic simulator packet counts, not wall-clock
  timings, so they are enforced unconditionally.
"""
import json
import sys

TRACE_OVERHEAD_TOLERANCE = 0.05
RSS_PER_NODE_BUDGET_KB = 32.0
SERVICE_COLLECTION_RATIO = 0.5
SERVICE_SHARING_RATIO = 0.25
SERVICE_SHARING_POINT = 16


def check_filterjoin(path: str, n: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data["benchmarks"]:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = float(bench["real_time"])
    naive = times.get(f"BM_ComputeJoinFilterNaive/{n}")
    indexed = times.get(f"BM_ComputeJoinFilterIndexed/{n}")
    if naive is None or indexed is None:
        print(f"missing benchmarks for n={n} in {path}: {sorted(times)}")
        return 1
    ratio = naive / indexed
    print(f"naive/{n}: {naive:.3f}  indexed/{n}: {indexed:.3f}  "
          f"speedup: {ratio:.2f}x (required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: indexed filter join is slower than the naive engine")
        return 1
    return 0


def check_runtime(path: str, min_ratio: float) -> int:
    with open(path) as f:
        doc = json.load(f)
    host_cpus = int(doc.get("host_cpus", 1))
    enforce = host_cpus >= 4
    if not enforce:
        print(f"host_cpus={host_cpus} < 4: parallel speedup not "
              "measurable on this host; reporting numbers only")

    failures = []

    trials = doc.get("micro", {}).get("trials_per_sec", {})
    t1, t4 = trials.get("1"), trials.get("4")
    if t1 and t4:
        ratio = t4 / t1
        print(f"micro trials/sec: 1t={t1:.1f}  4t={t4:.1f}  "
              f"speedup: {ratio:.2f}x (required >= {min_ratio}x)")
        if enforce and ratio < min_ratio:
            failures.append("micro trials_per_sec 4t/1t below threshold")
    else:
        print(f"micro trials_per_sec missing from {path}")
        if enforce:
            failures.append("micro trials_per_sec missing")

    passing = 0
    measured = 0
    for name, timing in sorted(doc.get("benches", {}).items()):
        t1s = timing.get("threads_1_s")
        t4s = timing.get("threads_4_s")
        if not t1s or not t4s:
            continue
        measured += 1
        ratio = t1s / t4s
        ok = ratio >= min_ratio
        passing += ok
        print(f"{name}: 1t={t1s:.2f}s  4t={t4s:.2f}s  "
              f"speedup: {ratio:.2f}x{'' if ok else '  (below threshold)'}")
    print(f"{passing}/{measured} sweep benches at >= {min_ratio}x "
          "(required: >= 2 benches)")
    if enforce and passing < 2:
        failures.append("fewer than 2 sweep benches met the speedup bar")

    trace = doc.get("micro", {}).get("trace", {})
    no_tracer = trace.get("unicasts_per_sec_no_tracer")
    disabled = trace.get("unicasts_per_sec_tracer_disabled")
    if no_tracer and disabled:
        overhead = max(0.0, 1.0 - disabled / no_tracer)
        print(f"tracer overhead (disabled): no_tracer={no_tracer:.0f}/s  "
              f"disabled={disabled:.0f}/s  overhead={overhead * 100:.2f}% "
              f"(allowed <= {TRACE_OVERHEAD_TOLERANCE * 100:.0f}%)")
        # Single-threaded measurement: enforced regardless of host_cpus.
        if overhead > TRACE_OVERHEAD_TOLERANCE:
            failures.append("disabled tracer overhead above tolerance")
    else:
        print(f"micro trace rates missing from {path}; "
              "tracer overhead check skipped")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def check_service(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    service = doc.get("service")
    if service is None:
        print(f"FAIL: {path} has no 'service' section")
        return 1

    collection = service["collection"]
    snapshot = float(collection["snapshot_packets_per_epoch"])
    delta = float(collection["delta_steady_packets_per_epoch"])
    print(
        f"collection: delta steady {delta:.1f} pkts/epoch, "
        f"snapshot {snapshot:.1f} pkts/epoch "
        f"(ratio {delta / snapshot:.3f}, bound {SERVICE_COLLECTION_RATIO})"
    )
    if delta > SERVICE_COLLECTION_RATIO * snapshot:
        print(
            "FAIL: steady-state delta collection exceeds "
            f"{SERVICE_COLLECTION_RATIO}x the snapshot collection cost"
        )
        return 1

    point = next(
        (
            entry
            for entry in service["sweep"]
            if entry["queries"] == SERVICE_SHARING_POINT
        ),
        None,
    )
    if point is None:
        print(f"FAIL: sweep has no {SERVICE_SHARING_POINT}-query point")
        return 1
    shared = float(point["shared_steady_packets_per_epoch"])
    dedicated = float(point["dedicated_steady_packets_per_epoch"])
    print(
        f"sharing at {SERVICE_SHARING_POINT} queries: shared "
        f"{shared:.1f} pkts/epoch, dedicated {dedicated:.1f} pkts/epoch "
        f"(ratio {shared / dedicated:.3f}, bound {SERVICE_SHARING_RATIO})"
    )
    if shared > SERVICE_SHARING_RATIO * dedicated:
        print(
            "FAIL: shared phases amortize less than "
            f"{1.0 / SERVICE_SHARING_RATIO:.0f}x at "
            f"{SERVICE_SHARING_POINT} queries"
        )
        return 1
    print("OK: service sweep bounds hold")
    return 0


def check_scale(path: str, min_ratio: float) -> int:
    with open(path) as f:
        doc = json.load(f)
    host_cpus = int(doc.get("host_cpus", 1))
    enforce = host_cpus >= 4
    if not enforce:
        print(f"host_cpus={host_cpus} < 4: windowed-engine speedup not "
              "measurable on this host; reporting numbers only")

    sizes = doc.get("scale", {}).get("sizes", [])
    if not sizes:
        print(f"scale section missing or empty in {path}")
        return 1

    failures = []
    for entry in sizes:
        n = entry["nodes"]
        if not entry.get("fingerprint_match", False):
            failures.append(f"engine fingerprints diverged at {n} nodes")

    largest = max(sizes, key=lambda entry: entry["nodes"])
    n = largest["nodes"]
    seq = largest.get("sequential", {})
    win = largest.get("windowed", {})

    # Peak RSS is read after each run of an ascending sweep, so the largest
    # size's windowed reading is the process-wide peak.
    rss_kb = max(seq.get("maxrss_kb", 0), win.get("maxrss_kb", 0))
    per_node = rss_kb / n
    print(f"peak RSS at {n} nodes: {rss_kb / 1024.0:.1f} MB "
          f"({per_node:.2f} KB/node, budget {RSS_PER_NODE_BUDGET_KB} "
          "KB/node)")
    if per_node > RSS_PER_NODE_BUDGET_KB:
        failures.append("peak RSS per node above budget")

    seq_rate, win_rate = seq.get("events_per_sec"), win.get("events_per_sec")
    if seq_rate and win_rate:
        ratio = win_rate / seq_rate
        print(f"events/sec at {n} nodes: sequential={seq_rate:.0f}  "
              f"windowed={win_rate:.0f} ({win.get('workers', '?')} workers)  "
              f"speedup: {ratio:.2f}x (required >= {min_ratio}x)")
        if enforce and ratio < min_ratio:
            failures.append("windowed events/sec speedup below threshold")
    else:
        print(f"events_per_sec missing from scale section of {path}")
        failures.append("events_per_sec missing")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--runtime":
        path = args[1]
        min_ratio = float(args[2]) if len(args) > 2 else 2.0
        return check_runtime(path, min_ratio)
    if args and args[0] == "--scale":
        path = args[1]
        min_ratio = float(args[2]) if len(args) > 2 else 1.5
        return check_scale(path, min_ratio)
    if args and args[0] == "--service":
        return check_service(args[1])
    path = args[0]
    n = args[1] if len(args) > 1 else "1500"
    min_ratio = float(args[2]) if len(args) > 2 else 1.0
    return check_filterjoin(path, n, min_ratio)


if __name__ == "__main__":
    sys.exit(main())
