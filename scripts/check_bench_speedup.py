#!/usr/bin/env python3
"""Asserts the indexed filter join is not slower than the naive engine.

Reads a google-benchmark JSON file (as written by
`micro_filterjoin --benchmark_out=...`) and compares
BM_ComputeJoinFilterNaive/<n> against BM_ComputeJoinFilterIndexed/<n>.
CI runners are noisy, so this is a regression tripwire, not a performance
measurement: it fails only if the indexed engine loses to the naive one.

Usage: check_bench_speedup.py <bench.json> [n] [min_ratio]
"""
import json
import sys


def main() -> int:
    path = sys.argv[1]
    n = sys.argv[2] if len(sys.argv) > 2 else "1500"
    min_ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 1.0
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data["benchmarks"]:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = float(bench["real_time"])
    naive = times.get(f"BM_ComputeJoinFilterNaive/{n}")
    indexed = times.get(f"BM_ComputeJoinFilterIndexed/{n}")
    if naive is None or indexed is None:
        print(f"missing benchmarks for n={n} in {path}: {sorted(times)}")
        return 1
    ratio = naive / indexed
    print(f"naive/{n}: {naive:.3f}  indexed/{n}: {indexed:.3f}  "
          f"speedup: {ratio:.2f}x (required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: indexed filter join is slower than the naive engine")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
