#!/usr/bin/env bash
# Regenerates every figure/table of the paper plus the ablations and
# extension benchmarks. Usage: scripts/run_all_benches.sh [build_dir] [seed]
set -euo pipefail

BUILD_DIR="${1:-build}"
SEED="${2:-42}"

for bench in \
    fig10_overall_savings fig11_per_node_load fig12_ratio_three_attrs \
    fig13_ratio_one_attr fig14_network_size fig15_step_breakdown \
    fig16_quadtree_influence tbl_compression tbl_packet_size \
    tbl_baselines tbl_lifetime abl_treecut abl_filter_forwarding \
    abl_resolution abl_geometry abl_planner abl_continuous; do
  echo "===== ${bench} ====="
  "${BUILD_DIR}/bench/${bench}" "${SEED}"
  echo
done

echo "===== micro_pointset ====="
"${BUILD_DIR}/bench/micro_pointset"
echo
echo "===== micro_compress ====="
"${BUILD_DIR}/bench/micro_compress"
echo
echo "===== micro_filterjoin ====="
"${BUILD_DIR}/bench/micro_filterjoin"
