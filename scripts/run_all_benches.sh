#!/usr/bin/env bash
# Regenerates every figure/table of the paper plus the ablations and
# extension benchmarks, recording per-bench wall-clock into the "benches"
# section of BENCH_runtime.json. Sweep-heavy benches are additionally run
# with --threads 4 so the tracked baseline captures the parallel speedup
# (their printed tables are byte-identical at any thread count). Any bench
# exiting non-zero fails the whole script.
# Usage: scripts/run_all_benches.sh [build_dir] [seed] [out_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SEED="${2:-42}"
OUT_DIR="${3:-.}"

ALL_BENCHES=(
  fig10_overall_savings fig11_per_node_load fig12_ratio_three_attrs
  fig13_ratio_one_attr fig14_network_size fig15_step_breakdown
  fig16_quadtree_influence tbl_compression tbl_packet_size
  tbl_baselines tbl_lifetime abl_treecut abl_filter_forwarding
  abl_resolution abl_geometry abl_planner abl_continuous
  abl_fault_tolerance
)

# Benches with enough independent trials for the 4-thread run to matter;
# these get a second, timed execution at --threads 4.
SWEEP_BENCHES=(
  fig10_overall_savings fig13_ratio_one_attr fig15_step_breakdown
  abl_treecut abl_resolution abl_planner abl_fault_tolerance
)

TIMINGS="$(mktemp)"
trap 'rm -f "${TIMINGS}"' EXIT

timed_run() {
  local bench="$1" label="$2"
  shift 2
  local start end
  start=$(date +%s%N)
  "${BUILD_DIR}/bench/${bench}" "$@"
  end=$(date +%s%N)
  echo "${bench} ${label} $(( (end - start) / 1000000 ))" >> "${TIMINGS}"
}

for bench in "${ALL_BENCHES[@]}"; do
  echo "===== ${bench} (--threads 1) ====="
  timed_run "${bench}" threads_1 --threads 1 "${SEED}"
  echo
done

for bench in "${SWEEP_BENCHES[@]}"; do
  echo "===== ${bench} (--threads 4) ====="
  timed_run "${bench}" threads_4 --threads 4 "${SEED}" > /dev/null
done
echo

echo "===== micro_pointset ====="
"${BUILD_DIR}/bench/micro_pointset"
echo
echo "===== micro_compress ====="
"${BUILD_DIR}/bench/micro_compress"
echo
echo "===== micro_filterjoin ====="
"${BUILD_DIR}/bench/micro_filterjoin"

python3 - "${TIMINGS}" "${OUT_DIR}/BENCH_runtime.json" <<'PY'
import json
import os
import sys

timings_path, out_path = sys.argv[1], sys.argv[2]

doc = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

benches = {}
with open(timings_path) as f:
    for line in f:
        name, label, ms = line.split()
        benches.setdefault(name, {})[label + "_s"] = int(ms) / 1000.0

doc["schema"] = "sensjoin-runtime-v1"
doc["host_cpus"] = os.cpu_count() or 1
doc["benches"] = benches

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote benches section of {out_path}")
PY
