#!/usr/bin/env bash
# Runs the tracked microbenchmarks and writes their google-benchmark JSON
# baselines into the repo root (BENCH_filterjoin.json, BENCH_pointset.json),
# plus the simulator/parallel-engine runtime baseline (BENCH_runtime.json:
# events/sec, fragments/sec, and experiment trials/sec at 1/2/4 threads).
# Build with -DCMAKE_BUILD_TYPE=Release first; usage:
#   scripts/run_benches.sh [build_dir] [out_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

run() {
  local bench="$1" out="$2"
  echo "===== ${bench} -> ${out} ====="
  "${BUILD_DIR}/bench/${bench}" \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1
}

run micro_filterjoin "${OUT_DIR}/BENCH_filterjoin.json"
run micro_pointset "${OUT_DIR}/BENCH_pointset.json"

# The simulator/parallel-engine and tracer-overhead microbenches are
# distilled into the "micro" section of BENCH_runtime.json
# (run_all_benches.sh fills the "benches" wall-clock section of the same
# file), the fault-tolerance ablation's repair-vs-re-execution sweep into
# its "repair" section, the delivery-semantics sweep (duplication x
# jitter x cross-attempt replay) into its "delivery" section, the
# single-topology sequential-vs-windowed sweep into its "scale" section,
# and the continuous multi-query service sweep into its "service" section.
RAW_JSON="$(mktemp)"
RAW_TRACE_JSON="$(mktemp)"
RAW_REPAIR_JSON="$(mktemp)"
RAW_DELIVERY_JSON="$(mktemp)"
RAW_SCALE_JSON="$(mktemp)"
RAW_SERVICE_JSON="$(mktemp)"
trap 'rm -f "${RAW_JSON}" "${RAW_TRACE_JSON}" "${RAW_REPAIR_JSON}" \
  "${RAW_DELIVERY_JSON}" "${RAW_SCALE_JSON}" "${RAW_SERVICE_JSON}"' EXIT

echo "===== abl_fault_tolerance (repair + delivery sweeps) ====="
"${BUILD_DIR}/bench/abl_fault_tolerance" \
  --repair-json="${RAW_REPAIR_JSON}" \
  --delivery-json="${RAW_DELIVERY_JSON}" 42 250 > /dev/null

# Continuous multi-query service sweep (delta collection vs snapshot,
# shared vs dedicated phases at 1/4/16/64 queries) into the "service"
# section.
echo "===== svc_service (continuous service sweep) ====="
"${BUILD_DIR}/bench/svc_service" \
  --service-json="${RAW_SERVICE_JSON}" 42 > /dev/null

# Single-topology scale sweep (sequential vs windowed engine). Override
# SCALE_SIZES to trade coverage for wall-clock (CI smoke uses 20000,50000;
# the tracked baseline uses the full 5k/15k/50k/150k ladder).
SCALE_SIZES="${SCALE_SIZES:-5000,15000,50000,150000}"
echo "===== fig14_network_size --scale (${SCALE_SIZES}) ====="
"${BUILD_DIR}/bench/fig14_network_size" --scale \
  --scale-sizes="${SCALE_SIZES}" \
  --scale-json="${RAW_SCALE_JSON}" 42

run micro_simulator "${RAW_JSON}"
run micro_trace "${RAW_TRACE_JSON}"
python3 - "${RAW_JSON}" "${RAW_TRACE_JSON}" "${RAW_REPAIR_JSON}" \
  "${RAW_DELIVERY_JSON}" "${RAW_SCALE_JSON}" "${RAW_SERVICE_JSON}" \
  "${OUT_DIR}/BENCH_runtime.json" <<'PY'
import json
import os
import sys

(raw_path, trace_path, repair_path, delivery_path, scale_path,
 service_path, out_path) = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5],
    sys.argv[6], sys.argv[7])
rates = {}
for path in (raw_path, trace_path):
    with open(path) as f:
        raw = json.load(f)
    for bench in raw["benchmarks"]:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rates[bench["name"]] = float(bench.get("items_per_second", 0.0))

doc = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

doc["schema"] = "sensjoin-runtime-v1"
doc["host_cpus"] = os.cpu_count() or 1
doc["micro"] = {
    "events_per_sec": {
        "schedule_run_16384": rates.get("BM_EventQueueScheduleRun/16384"),
        "cancel_half_16384": rates.get("BM_EventQueueCancelHalf/16384"),
        "slot_recycle_16384": rates.get("BM_EventQueueSlotRecycle/16384"),
    },
    "fragments_per_sec": rates.get("BM_SimulatorUnicastFragments"),
    "trials_per_sec": {
        "1": rates.get("BM_TestbedTrials/1/real_time"),
        "2": rates.get("BM_TestbedTrials/2/real_time"),
        "4": rates.get("BM_TestbedTrials/4/real_time"),
    },
    "trace": {
        "unicasts_per_sec_no_tracer": rates.get("BM_UnicastNoTracer"),
        "unicasts_per_sec_tracer_disabled": rates.get(
            "BM_UnicastTracerDisabled"),
        "unicasts_per_sec_tracer_enabled": rates.get(
            "BM_UnicastTracerEnabled"),
        "buffer_appends_per_sec": rates.get("BM_TraceBufferAppend"),
    },
    "alloc": {
        "delivery_slots_heap_per_sec": rates.get("BM_DeliverySlotsHeap"),
        "delivery_slots_arena_per_sec": rates.get("BM_DeliverySlotsArena"),
    },
    "layout": {
        "node_state_aos_per_sec_65536": rates.get("BM_NodeStateAoS/65536"),
        "node_state_soa_per_sec_65536": rates.get("BM_NodeStateSoA/65536"),
    },
}

with open(repair_path) as f:
    doc["repair"] = json.load(f)

with open(delivery_path) as f:
    doc["delivery"] = json.load(f)

with open(scale_path) as f:
    doc["scale"] = json.load(f)

with open(service_path) as f:
    doc["service"] = json.load(f)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote micro, repair, delivery, scale and service sections "
      f"of {out_path}")
PY
