#!/usr/bin/env bash
# Runs the tracked microbenchmarks and writes their google-benchmark JSON
# baselines into the repo root (BENCH_filterjoin.json, BENCH_pointset.json).
# Build with -DCMAKE_BUILD_TYPE=Release first; usage:
#   scripts/run_benches.sh [build_dir] [out_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

run() {
  local bench="$1" out="$2"
  echo "===== ${bench} -> ${out} ====="
  "${BUILD_DIR}/bench/${bench}" \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1
}

run micro_filterjoin "${OUT_DIR}/BENCH_filterjoin.json"
run micro_pointset "${OUT_DIR}/BENCH_pointset.json"
