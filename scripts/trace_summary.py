#!/usr/bin/env python3
"""Reduce a sensjoin Chrome trace to per-phase / per-node cost tables.

Usage:
    trace_summary.py TRACE.json            # tables + cross-check
    trace_summary.py --validate TRACE.json # schema validation only
    trace_summary.py --top N TRACE.json    # rows in the per-node table

The input is the Perfetto-loadable JSON written by the bench harnesses'
`--trace=PATH` flag (schema "sensjoin-trace-v1"): protocol phases as
complete ("X") duration events, everything else as instant ("i") events
whose args carry the enclosing phase plus fragment/byte/energy payloads.

When the trace embeds a top-level "crossCheck" section (RunTracedExecution
always embeds one), the per-phase sums recomputed here are compared against
the simulator's own CostReport accounting: packet and byte counts must
match exactly (they are integer event counts on both sides), energy within
a small relative tolerance (the simulator accumulates some costs in a
different floating-point summation order than the per-event trace records).
Any mismatch exits nonzero, making this the end-to-end proof that the
trace is a faithful itemization of the simulator's accounting.
"""
import argparse
import json
import sys

SCHEMA = "sensjoin-trace-v1"

PHASE_NAMES = [
    "None",
    "TreeBuild",
    "QueryDissemination",
    "JoinAttributeCollection",
    "BaseStationJoin",
    "FilterDissemination",
    "FinalResult",
    "ExternalCollection",
    "TreeRepair",
    "ServiceEpoch",
]

EVENT_NAMES = [
    "phase_begin",
    "phase_end",
    "frag_tx",
    "frag_rx",
    "frag_loss",
    "frag_corrupt",
    "ack_tx",
    "ack_rx",
    "retransmit",
    "message_drop",
    "recovery_request",
    "crash",
    "restore",
    "link_down",
    "link_up",
    "orphan_detected",
    "repair_request",
    "reattach",
    "deadline_expired",
    "degraded_result",
    "duplicate_rx",
    "stale_drop",
    "replay_rx",
]

# Message kinds whose transmissions CostReport counts as join processing.
JOIN_KINDS = ("collection", "filter", "final")

ENERGY_REL_TOL = 1e-6


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


# ---------------------------------------------------------------------------
# Validation


def validate(doc: dict) -> int:
    """Checks the trace against the sensjoin-trace-v1 / Perfetto schema."""
    errors = []

    def err(msg):
        if len(errors) < 20:
            errors.append(msg)

    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != SCHEMA:
        err(f"otherData.schema != {SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("FAIL: traceEvents missing or not a list")
        return 1
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        err("displayTimeUnit must be 'ms' or 'ns'")
    if not isinstance(doc.get("metrics"), dict):
        err("metrics section missing")

    named_threads = set()  # (pid, tid) with thread_name metadata
    used_threads = set()
    counts = {"X": 0, "i": 0, "M": 0}
    for idx, e in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(e, dict):
            err(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in counts:
            err(f"{where}: unsupported ph {ph!r}")
            continue
        counts[ph] += 1
        if not isinstance(e.get("name"), str):
            err(f"{where}: missing name")
            continue
        if ph == "M":
            if e["name"] == "thread_name":
                named_threads.add((e.get("pid"), e.get("tid")))
            continue
        pid, tid = e.get("pid"), e.get("tid")
        if pid not in (0, 1):
            err(f"{where}: pid must be 0 (protocol) or 1 (nodes)")
        if not isinstance(tid, int) or tid < 0:
            err(f"{where}: tid must be a non-negative int")
        if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
            err(f"{where}: ts must be a non-negative number")
        used_threads.add((pid, tid))
        if ph == "X":
            if e["name"] not in PHASE_NAMES:
                err(f"{where}: unknown phase {e['name']!r}")
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                err(f"{where}: X event needs dur >= 0")
        else:  # ph == "i"
            if e["name"] not in EVENT_NAMES:
                err(f"{where}: unknown event {e['name']!r}")
            if e.get("s") != "t":
                err(f"{where}: instant scope must be 't'")
            args = e.get("args")
            if not isinstance(args, dict):
                err(f"{where}: instant event needs args")
                continue
            if args.get("phase") not in PHASE_NAMES:
                err(f"{where}: args.phase invalid: {args.get('phase')!r}")
            for field in ("count", "detail", "bytes"):
                v = args.get(field)
                if not isinstance(v, int) or v < 0:
                    err(f"{where}: args.{field} must be a non-negative int")
            if not isinstance(args.get("energy_mj"), (int, float)):
                err(f"{where}: args.energy_mj must be a number")

    for pid, tid in sorted(t for t in used_threads if t[0] == 1):
        if (pid, tid) not in named_threads:
            err(f"node track pid={pid} tid={tid} has no thread_name metadata")
    if (0, None) not in named_threads and (0, 0) not in named_threads:
        err("protocol track has no thread_name metadata")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: {len(events)} trace events "
          f"({counts['X']} spans, {counts['i']} instants, "
          f"{counts['M']} metadata); schema {SCHEMA}")
    return 0


# ---------------------------------------------------------------------------
# Summaries


def summarize(events: list) -> dict:
    """Per-phase totals from the instant events (node tracks only count
    once: per-node X spans and global spans are ignored here)."""
    phases = {}
    per_node = {}  # node -> {phase -> join tx frags}
    for e in events:
        if e.get("ph") != "i":
            continue
        args = e["args"]
        phase = args["phase"]
        p = phases.setdefault(phase, {
            "tx_frags": 0, "tx_bytes": 0, "tx_by_kind": {},
            "rx_frags": 0, "retransmissions": 0, "acks": 0,
            "duplicates": 0, "replays": 0, "stale_drops": 0,
            "energy_mj": 0.0, "events": 0,
        })
        p["events"] += 1
        p["energy_mj"] += args["energy_mj"]
        name = e["name"]
        if name == "frag_tx":
            p["tx_frags"] += args["count"]
            p["tx_bytes"] += args["bytes"]
            kind = args.get("msg", "?")
            p["tx_by_kind"][kind] = p["tx_by_kind"].get(kind, 0) \
                + args["count"]
            if kind in JOIN_KINDS:
                node = e["tid"]
                per_node.setdefault(node, {})
                per_node[node][phase] = per_node[node].get(phase, 0) \
                    + args["count"]
        elif name == "frag_rx":
            p["rx_frags"] += args["count"]
        elif name == "retransmit":
            p["retransmissions"] += args["count"]
        elif name == "ack_tx":
            p["acks"] += args["count"]
        elif name == "duplicate_rx":
            p["duplicates"] += args["count"]
        elif name == "replay_rx":
            p["replays"] += args["count"]
        elif name == "stale_drop":
            p["stale_drops"] += args["count"]
    return {"phases": phases, "per_node": per_node}


def print_tables(summary: dict, top: int) -> None:
    phases = summary["phases"]
    order = [p for p in PHASE_NAMES if p in phases]
    order += sorted(p for p in phases if p not in PHASE_NAMES)

    hdr = (f"{'phase':<24} {'events':>8} {'tx frags':>9} {'tx bytes':>10} "
           f"{'rx frags':>9} {'rtx':>6} {'acks':>6} {'energy mJ':>12}")
    print(hdr)
    print("-" * len(hdr))
    for name in order:
        p = phases[name]
        print(f"{name:<24} {p['events']:>8} {p['tx_frags']:>9} "
              f"{p['tx_bytes']:>10} {p['rx_frags']:>9} "
              f"{p['retransmissions']:>6} {p['acks']:>6} "
              f"{p['energy_mj']:>12.3f}")

    per_node = summary["per_node"]
    if not per_node:
        return
    print()
    totals = {n: sum(by.values()) for n, by in per_node.items()}
    ranked = sorted(totals, key=lambda n: (-totals[n], n))[:top]
    print(f"per-node join-processing tx fragments "
          f"(top {len(ranked)} of {len(per_node)} nodes):")
    hdr = f"{'node':>6} {'total':>7}  phases"
    print(hdr)
    print("-" * 48)
    for n in ranked:
        by = per_node[n]
        detail = ", ".join(f"{p}={by[p]}" for p in PHASE_NAMES if p in by)
        print(f"{n:>6} {totals[n]:>7}  {detail}")


# ---------------------------------------------------------------------------
# Cross-check


def cross_check(summary: dict, cross: dict) -> int:
    """Compares per-phase sums recomputed from the trace against the
    embedded CostReport totals. Exact for packets/bytes, ENERGY_REL_TOL
    for energy."""
    phases = summary["phases"]
    per_node = summary["per_node"]
    failures = 0

    def expect(label, got, want, exact=True):
        nonlocal failures
        if exact:
            ok = got == want
        else:
            ok = abs(got - want) <= ENERGY_REL_TOL * max(abs(want), 1.0)
        mark = "ok" if ok else "MISMATCH"
        print(f"  {label:<28} trace={got:<16} report={want:<16} {mark}")
        failures += not ok

    for group, group_phases in sorted(cross["phase_map"].items()):
        report = cross[group]
        in_group = [phases.get(p) for p in group_phases]
        in_group = [p for p in in_group if p is not None]

        def tx_of(kind):
            return sum(p["tx_by_kind"].get(kind, 0) for p in in_group)

        print(f"{group} ({'+'.join(group_phases)}):")
        expect("collection_packets", tx_of("collection"),
               report["collection_packets"])
        expect("filter_packets", tx_of("filter"), report["filter_packets"])
        expect("final_packets", tx_of("final"), report["final_packets"])
        expect("join_packets",
               tx_of("collection") + tx_of("filter") + tx_of("final"),
               report["join_packets"])
        # join_bytes is the total_bytes_sent delta: every transmitted
        # frame of every message kind (acks are itemized separately by the
        # simulator and never enter total_bytes_sent).
        expect("join_bytes", sum(p["tx_bytes"] for p in in_group),
               report["join_bytes"])
        expect("duplicate_packets", sum(p["duplicates"] for p in in_group),
               report.get("duplicate_packets", 0))
        expect("replayed_packets", sum(p["replays"] for p in in_group),
               report.get("replayed_packets", 0))
        expect("energy_mj", sum(p["energy_mj"] for p in in_group),
               report["energy_mj"], exact=False)

        want_per_node = report["per_node_packets"]
        got_per_node = [0] * len(want_per_node)
        for node, by in per_node.items():
            for phase, count in by.items():
                if phase in group_phases and node < len(got_per_node):
                    got_per_node[node] += count
        bad = [i for i in range(len(want_per_node))
               if got_per_node[i] != want_per_node[i]]
        mark = "ok" if not bad else f"MISMATCH at nodes {bad[:8]}"
        print(f"  {'per_node_packets':<28} "
              f"nodes={len(want_per_node):<16} "
              f"sum={sum(got_per_node):<16} {mark}")
        failures += bool(bad)

    if failures:
        return fail(f"{failures} cross-check mismatches")
    print("cross-check: trace sums match CostReport totals")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Summarize / validate a sensjoin Chrome trace.")
    parser.add_argument("trace", help="trace JSON written by --trace=PATH")
    parser.add_argument("--validate", action="store_true",
                        help="schema validation only (CI)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the per-node table (default 10)")
    args = parser.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    if args.validate:
        return validate(doc)

    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        return fail(f"not a {SCHEMA} trace: {args.trace}")
    if other.get("dropped"):
        print(f"note: ring buffer dropped {other['dropped']} events; "
              "sums cover the retained tail only")

    summary = summarize(doc["traceEvents"])
    print_tables(summary, args.top)

    cross = doc.get("crossCheck")
    if cross is None:
        print("\nno crossCheck section embedded; skipping cross-check")
        return 0
    if other.get("dropped"):
        print("\ncrossCheck present but events were dropped; "
              "skipping cross-check")
        return 0
    print()
    return cross_check(summary, cross)


if __name__ == "__main__":
    sys.exit(main())
